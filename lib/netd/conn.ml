module Codec = Dce_wire.Codec
module M = Dce_obs.Metrics

type close_reason =
  | Eof
  | Overflow
  | Idle
  | Superseded
  | Corrupt of string
  | Socket_error of string
  | Local of string

let reason_string = function
  | Eof -> "peer closed the connection"
  | Overflow -> "outbox overflow (backpressure)"
  | Idle -> "idle timeout"
  | Superseded -> "superseded by a newer connection for the same site"
  | Corrupt e -> "corrupt stream: " ^ e
  | Socket_error e -> "socket error: " ^ e
  | Local r -> r

type t = {
  fd : Unix.file_descr;
  peer : string;
  splitter : Splitter.t;
  outbox : string Queue.t; (* framed chunks, head partially written *)
  mutable out_off : int;
  mutable out_bytes : int;
  max_outbox : int;
  mutable closed : close_reason option;
  mutable last_recv_ms : float;
  mutable last_send_ms : float;
  read_buf : Bytes.t;
  tele : Tele.t;
  (* chaos: [faults] decides each outgoing frame's fate; [held] keeps
     delayed frames until their release stamp, [swap_slot] one frame
     waiting to ride out behind the next (reordering) *)
  faults : Faults.t option;
  held : (float * string) Queue.t;
  mutable swap_slot : (float * string) option;
}

(* Monotonic, injectable for tests: wall-clock steps (NTP, suspend) must
   not fire idle timeouts or freeze heartbeats. *)
let now_ms = Dce_obs.Clock.now_ms

let create ?(max_outbox = 4 * 1024 * 1024) ?(max_frame = 8 * 1024 * 1024) ?faults ~tele
    ~peer fd =
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  let now = now_ms () in
  {
    fd;
    peer;
    splitter = Splitter.create ~max_payload:max_frame ();
    outbox = Queue.create ();
    out_off = 0;
    out_bytes = 0;
    max_outbox;
    closed = None;
    last_recv_ms = now;
    last_send_ms = now;
    read_buf = Bytes.create 65536;
    tele;
    faults;
    held = Queue.create ();
    swap_slot = None;
  }

let fd t = t.fd
let peer t = t.peer
let alive t = t.closed = None
let closed_reason t = t.closed
let last_recv_ms t = t.last_recv_ms
let last_send_ms t = t.last_send_ms
let outbox_bytes t = t.out_bytes

let mark_closed t reason = if t.closed = None then t.closed <- Some reason

let enqueue_framed t framed =
  if t.out_bytes + String.length framed > t.max_outbox then begin
    (* A peer that cannot drain its socket would otherwise grow our
       heap without bound; the policy is to cut it loose and let it
       resynchronize from a snapshot when it reconnects. *)
    M.incr t.tele.Tele.overflows;
    mark_closed t Overflow
  end
  else begin
    Queue.add framed t.outbox;
    t.out_bytes <- t.out_bytes + String.length framed;
    M.incr t.tele.Tele.frames_out
  end

(* Move fault-held frames whose release stamp has passed into the
   outbox.  Called from every outbox-touching entry point, so held
   frames drain as long as the owner keeps pumping its loop. *)
let release_due t =
  if alive t then begin
    let now = now_ms () in
    (match t.swap_slot with
     | Some (at, framed) when at <= now ->
       t.swap_slot <- None;
       enqueue_framed t framed
     | _ -> ());
    let rec go () =
      match Queue.peek_opt t.held with
      | Some (at, framed) when at <= now ->
        ignore (Queue.pop t.held);
        enqueue_framed t framed;
        go ()
      | _ -> ()
    in
    go ()
  end

let wants_write t =
  release_due t;
  t.closed = None && t.out_bytes > 0

let send t payload =
  release_due t;
  if alive t then begin
    let framed = Codec.frame payload in
    match t.faults with
    | None -> enqueue_framed t framed
    | Some f ->
      if Faults.partitioned f then Faults.count_partition_drop f
      else (
        match Faults.decide f with
        | Faults.Swap ->
          (* hold this frame so the next one overtakes it; a stamp bounds
             the wait in case no next frame ever comes *)
          let stamp = now_ms () +. float_of_int (Faults.config f).Faults.delay_ms in
          (match t.swap_slot with
           | None -> t.swap_slot <- Some (stamp, framed)
           | Some (_, old) ->
             enqueue_framed t old;
             t.swap_slot <- Some (stamp, framed))
        | d ->
          (match d with
           | Faults.Pass -> enqueue_framed t framed
           | Faults.Drop -> ()
           | Faults.Dup ->
             enqueue_framed t framed;
             enqueue_framed t framed
           | Faults.Delay ms ->
             Queue.add (now_ms () +. float_of_int ms, framed) t.held
           | Faults.Swap -> assert false);
          (* the frame that was swapped behind rides out now *)
          match t.swap_slot with
          | Some (_, old) when alive t ->
            t.swap_slot <- None;
            enqueue_framed t old
          | _ -> ())
  end

let drain_frames t =
  let rec go acc =
    match Splitter.next t.splitter with
    | Ok None -> List.rev acc
    | Ok (Some payload) ->
      M.incr t.tele.Tele.frames_in;
      go (payload :: acc)
    | Error e ->
      M.incr t.tele.Tele.framing_errors;
      mark_closed t (Corrupt e);
      List.rev acc
  in
  go []

let handle_readable t =
  if not (alive t) then []
  else
    match Unix.read t.fd t.read_buf 0 (Bytes.length t.read_buf) with
    | 0 ->
      mark_closed t Eof;
      (* EOF can still leave complete frames in the splitter *)
      drain_frames t
    | n ->
      M.add t.tele.Tele.bytes_in n;
      t.last_recv_ms <- now_ms ();
      Splitter.feed t.splitter t.read_buf ~off:0 ~len:n;
      drain_frames t
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      []
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      (* an abortive close is still just "the peer went away" *)
      mark_closed t Eof;
      drain_frames t
    | exception Unix.Unix_error (e, _, _) ->
      mark_closed t (Socket_error (Unix.error_message e));
      []

let write_outbox t =
  begin
    let t0 = Dce_obs.Clock.now_ns () in
    let wrote = ref 0 in
    let continue = ref true in
    while !continue && not (Queue.is_empty t.outbox) do
      let head = Queue.peek t.outbox in
      let len = String.length head - t.out_off in
      match Unix.write_substring t.fd head t.out_off len with
      | n ->
        wrote := !wrote + n;
        t.out_bytes <- t.out_bytes - n;
        if n = len then begin
          ignore (Queue.pop t.outbox);
          t.out_off <- 0
        end
        else begin
          t.out_off <- t.out_off + n;
          continue := false (* kernel buffer is full; wait for select *)
        end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> continue := false
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        (* writing into a connection the peer already slammed shut: a
           disconnect, not an error (the process-level SIGPIPE must be
           ignored for the write to surface as EPIPE at all) *)
        mark_closed t Eof;
        continue := false
      | exception Unix.Unix_error (e, _, _) ->
        mark_closed t (Socket_error (Unix.error_message e));
        continue := false
    done;
    if !wrote > 0 then begin
      M.add t.tele.Tele.bytes_out !wrote;
      t.last_send_ms <- now_ms ();
      M.observe t.tele.Tele.flush_ns (Dce_obs.Clock.now_ns () - t0)
    end
  end

let handle_writable t = if wants_write t then write_outbox t

let flush t =
  release_due t;
  if t.out_bytes > 0 then write_outbox t

let shutdown t =
  (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()
