(** Value-semantics controller journals for the model checker.

    The explorer's search nodes must be pure values — sibling branches
    of the DFS may never observe each other's writes — but the real
    persistence stack ({!Dce_store.Persist} over {!Dce_store.Store})
    is imperative.  This module bridges the two: a {!t} holds an
    immutable {!Dce_store.Io.Mem.image} of the site's store directory,
    and every operation restores a private in-memory world from the
    image, drives the {e production} store code over it ([Persist.record],
    [Persist.checkpoint], [Persist.opendir] replay), and snapshots the
    world back into a fresh image.  Nothing is reimplemented: crash
    recovery inside the checker is byte-for-byte the recovery the
    daemons run.

    Scope is bounded (a handful of records between checkpoints), so the
    restore/reopen per operation costs microseconds — a price worth
    paying for running the real code in a branching search. *)

open Dce_ot
open Dce_core

type t

val default_config : Dce_store.Store.config
(** [fsync Always], [snapshot_every 2], [keep_generations 2]. *)

val create : ?config:Dce_store.Store.config -> char Controller.t -> t
(** A fresh journal whose initial checkpoint is [c]'s serialized state.
    [config] defaults to [fsync Always], [snapshot_every 2],
    [keep_generations 2] — small enough that bounded scenarios cross
    several checkpoint generations. *)

val record : t -> char Dce_store.Persist.record -> char Controller.t -> t * bool
(** Append one input record; when the active log reaches
    [snapshot_every] records, checkpoint [c] (the post-apply state) and
    switch generations.  Returns the new journal and whether a
    checkpoint was taken.  Raises [Failure] if the store misbehaves —
    inside the explorer that surfaces as a violation. *)

val checkpoint : t -> char Controller.t -> t
(** Force a checkpoint of [c] now (the hub's pre-compaction
    checkpoint). *)

val cut : t -> Vclock.t option
(** The durability cut: clock of the newest durable snapshot. *)

val generations : t -> int list

val crash : t -> t
(** Kill the owning process, [kill -9] flavor: open handles die, file
    contents survive (the page cache outlives the process). *)

val corrupt_newest_snapshot : t -> t option
(** Flip a byte in the newest snapshot so recovery must fall back to
    the previous generation and {e its} log.  [None] when fewer than
    two generations exist (no fallback pair to test). *)

type recovery = {
  controller : char Controller.t;
  emitted : char Controller.message list;
  replayed : int;
  truncated_bytes : int;
}

val recover : t -> (t * recovery, string) result
(** The real [Persist.opendir] over the image: newest valid snapshot,
    decode, replay the generation's log through
    [generate]/[admin_update]/[receive].  [Error] if the store is
    unrecoverable or recovery yields no controller. *)

val fingerprint : t -> string
(** Canonical digest of the image — part of the explorer's node
    fingerprint, so schedules that leave different bytes on "disk" are
    distinct states. *)
