(** Exhaustive small-scope verification of the transformation layer.

    The QCheck properties in [test/test_ot.ml] sample the space of
    (document, concurrent operations) configurations; this module walks
    {e all} of them up to a bound, in the spirit of the small-scope
    hypothesis: transformation bugs that exist at all already show up on
    documents of two or three cells over a two-letter alphabet.

    The enumerated universe: every tombstone document of model length
    [<= max_len] whose cells carry an element of [alphabet] and a hide
    count in [[0, max_hide]] (no pre-existing writes — writes only arise
    from updates, which the enumerated operations cover); and, per
    document, every valid operation of each issuing site — insertions at
    every position with every letter, the deletion of every cell, every
    update of every cell to every letter, and the un-deletion of every
    hidden cell.  Concurrent sets that two concurrent undos of one cell
    would make unreachable in the protocol are excluded, exactly as in
    the randomized generators. *)

type bounds = { max_len : int; alphabet : char list; max_hide : int }

val default : bounds
(** [{ max_len = 2; alphabet = ['a'; 'b']; max_hide = 1 }] — 21
    documents, a few hundred operation pairs per document; all three
    properties below sweep in well under a second. *)

type outcome = {
  docs : int;  (** documents enumerated *)
  cases : int;  (** operation pairs (or triples) checked *)
  failed : string option;  (** first counterexample, rendered; [None] = property holds *)
}

val tp1 : ?bounds:bounds -> unit -> outcome
(** Convergence property TP1 over all documents and concurrent pairs:
    [Do(o1; it o2 o1) = Do(o2; it o1 o2)] (model equality). *)

val tp2 : ?bounds:bounds -> unit -> outcome
(** Convergence property TP2 over all documents and concurrent triples:
    [it_list o3 [o1; it o2 o1] = it_list o3 [o2; it o1 o2]]. *)

val inversion : ?bounds:bounds -> unit -> outcome
(** IT/ET inversion over all documents and concurrent pairs:
    [it (et o1' o2) o2 = o1'] for [o1' = it o1 o2] — the identity the
    log transposition machinery relies on. *)
