open Dce_ot

type bounds = { max_len : int; alphabet : char list; max_hide : int }

let default = { max_len = 2; alphabet = [ 'a'; 'b' ]; max_hide = 1 }

type outcome = { docs : int; cases : int; failed : string option }

let cells b =
  List.concat_map
    (fun elt ->
      List.init (b.max_hide + 1) (fun hidden -> { Tdoc.elt; writes = []; hidden }))
    b.alphabet

let docs b =
  let cs = cells b in
  let rec of_len n =
    if n = 0 then [ [] ]
    else
      let shorter = of_len (n - 1) in
      List.concat_map (fun c -> List.map (fun d -> c :: d) shorter) cs
  in
  List.concat_map (fun n -> List.map Tdoc.of_cells (of_len n))
    (List.init (b.max_len + 1) Fun.id)

(* Every valid operation site [pr] can hold on [doc]: insertions at every
   position, deletion of every cell, update of every cell to every
   letter, un-deletion of every hidden cell.  Concurrent sites carry
   distinct [pr], so update tags never collide. *)
let ops b ~pr doc =
  let n = Tdoc.model_length doc in
  let ins =
    List.concat_map
      (fun p -> List.map (fun e -> Op.ins ~pr p e) b.alphabet)
      (List.init (n + 1) Fun.id)
  in
  let per_cell p =
    let c = Tdoc.cell doc p in
    (Op.del p c.Tdoc.elt
     :: List.map (fun e -> Op.up ~tag:{ Op.stamp = pr; site = pr } p c.Tdoc.elt e) b.alphabet)
    @ (if c.Tdoc.hidden > 0 then [ Op.undel p c.Tdoc.elt ] else [])
  in
  ins @ List.concat_map per_cell (List.init n Fun.id)

(* Two concurrent un-deletions of one cell cannot arise in the protocol
   (each request is cancelled by exactly one administrative cut) — same
   exclusion as the randomized generators. *)
let compatible ops =
  let undel_pos =
    List.filter_map (function Op.Undel { pos; _ } -> Some pos | _ -> None) ops
  in
  List.length undel_pos = List.length (List.sort_uniq compare undel_pos)

let show_doc d = Format.asprintf "%a" (Tdoc.pp Fmt.char) d

let show_op o = Format.asprintf "%a" (Op.pp Fmt.char) o

let sweep ?(bounds = default) ~arity check =
  let docs = docs bounds in
  let cases = ref 0 in
  let failed = ref None in
  List.iter
    (fun doc ->
      if !failed = None then
        let o1s = ops bounds ~pr:1 doc in
        let o2s = ops bounds ~pr:2 doc in
        let o3s = if arity >= 3 then ops bounds ~pr:3 doc else [ Op.Nop ] in
        List.iter
          (fun o1 ->
            List.iter
              (fun o2 ->
                List.iter
                  (fun o3 ->
                    if
                      !failed = None
                      && compatible (if arity >= 3 then [ o1; o2; o3 ] else [ o1; o2 ])
                    then begin
                      incr cases;
                      match check doc o1 o2 o3 with
                      | None -> ()
                      | Some msg -> failed := Some msg
                    end)
                  o3s)
              o2s)
          o1s)
    docs;
  { docs = List.length docs; cases = !cases; failed = !failed }

let counterexample ~prop doc ops detail =
  Printf.sprintf "%s violated: doc=%s %s%s" prop (show_doc doc)
    (String.concat " "
       (List.mapi (fun i o -> Printf.sprintf "o%d=%s" (i + 1) (show_op o)) ops))
    (match detail with "" -> "" | d -> " (" ^ d ^ ")")

let tp1 ?bounds () =
  sweep ?bounds ~arity:2 (fun doc o1 o2 _ ->
      let left = Tdoc.apply (Tdoc.apply doc o1) (Transform.it o2 o1) in
      let right = Tdoc.apply (Tdoc.apply doc o2) (Transform.it o1 o2) in
      if Tdoc.equal_model Char.equal left right then None
      else
        Some
          (counterexample ~prop:"TP1" doc [ o1; o2 ]
             (Printf.sprintf "%s <> %s" (show_doc left) (show_doc right))))

let tp2 ?bounds () =
  sweep ?bounds ~arity:3 (fun _doc o1 o2 o3 ->
      let left = Transform.it_list o3 [ o1; Transform.it o2 o1 ] in
      let right = Transform.it_list o3 [ o2; Transform.it o1 o2 ] in
      if Op.equal Char.equal left right then None
      else
        Some
          (counterexample ~prop:"TP2" _doc [ o1; o2; o3 ]
             (Printf.sprintf "%s <> %s" (show_op left) (show_op right))))

let inversion ?bounds () =
  sweep ?bounds ~arity:2 (fun doc o1 o2 _ ->
      let o1' = Transform.it o1 o2 in
      let back = Transform.it (Transform.et o1' o2) o2 in
      if Op.equal Char.equal o1' back then None
      else
        Some
          (counterexample ~prop:"IT/ET inversion" doc [ o1; o2 ]
             (Printf.sprintf "it(et(%s)) = %s" (show_op o1') (show_op back))))
