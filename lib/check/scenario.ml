open Dce_ot
open Dce_core

type edit = Ins of int * char | Del of int | Up of int * char

type action = Edit of edit | Policy of Admin_op.t | Beacon | Compact | Crash | Recover

type t = {
  sites : Subject.user list;
  policy : Policy.t;
  initial : string;
  scripts : (Subject.user * action list) list;
  features : Controller.features;
  persist : Dce_store.Store.config option;
}

(* Clamp a visible position into [0, n] (for insertions) or [0, n-1]
   (for in-place edits); an in-place edit on an empty document degrades
   to an insertion so every action stays executable. *)
let op_of_edit doc e =
  let n = Tdoc.visible_length doc in
  match e with
  | Ins (p, c) -> Tdoc.ins_visible doc (min p n) c
  | Del p -> if n = 0 then Tdoc.ins_visible doc 0 'z' else Tdoc.del_visible doc (min p (n - 1))
  | Up (p, c) -> if n = 0 then Tdoc.ins_visible doc 0 c else Tdoc.up_visible doc (min p (n - 1)) c

let revoke_insert user =
  Admin_op.Add_auth (0, Auth.deny [ Subject.User user ] [ Docobj.Whole ] [ Right.Insert ])

let regrant_insert user =
  Admin_op.Add_auth (0, Auth.grant [ Subject.User user ] [ Docobj.Whole ] [ Right.Insert ])

let make ?(features = Controller.secure) ?initial ?(mixed = false) ?stability
    ?crash ~sites ~coop ~admin_ops () =
  if sites < 2 then invalid_arg "Scenario.make: need at least two sites";
  let site_ids = List.init sites Fun.id in
  let users = List.init (sites - 1) (fun i -> i + 1) in
  let initial =
    match initial with
    | Some s -> s
    | None -> String.init (max 4 (coop + 2)) (fun i -> Char.chr (97 + (i mod 26)))
  in
  let edit k =
    let c = Char.chr (97 + (k mod 26)) in
    if not mixed then Ins (k, c)
    else
      match k mod 3 with
      | 0 -> Ins (k, c)
      | 1 -> Del k
      | _ -> Up (k, Char.uppercase_ascii c)
  in
  (* With [stability = k], every site broadcasts a stability beacon and
     compacts its window after each k-th action (and once at the end of
     its script), so the explorer interleaves beacon deliveries and
     compaction freely with ordinary delivery transitions. *)
  let weave actions =
    match stability with
    | None -> actions
    | Some k when k < 1 -> invalid_arg "Scenario.make: stability must be >= 1"
    | Some k ->
      List.concat
        (List.mapi
           (fun i a -> if (i + 1) mod k = 0 then [ a; Beacon; Compact ] else [ a ])
           actions)
      @ if List.length actions mod k = 0 then [] else [ Beacon; Compact ]
  in
  (* With [crash = k], every non-admin site dies (kill -9 over its
     journal) and recovers through the real replay path after its k-th
     woven action; the explorer then interleaves that crash window with
     every delivery, beacon, and compaction order. *)
  let weave_crash actions =
    match crash with
    | None -> actions
    | Some k when k < 0 -> invalid_arg "Scenario.make: crash must be >= 0"
    | Some k ->
      let k = min k (List.length actions) in
      let rec ins i rest =
        if i = k then Crash :: Recover :: rest
        else match rest with [] -> [ Crash; Recover ] | a :: tl -> a :: ins (i + 1) tl
      in
      ins 0 actions
  in
  let coop_script u =
    List.filteri (fun k _ -> k mod (sites - 1) = u - 1) (List.init coop edit)
    |> List.map (fun e -> Edit e)
    |> weave |> weave_crash
  in
  let admin_script =
    weave
      (List.init admin_ops (fun k ->
           Policy (if k mod 2 = 0 then revoke_insert 1 else regrant_insert 1)))
  in
  {
    sites = site_ids;
    policy =
      Policy.make ~users:site_ids [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ];
    initial;
    scripts = (0, admin_script) :: List.map (fun u -> (u, coop_script u)) users;
    features;
    persist = (match crash with None -> None | Some _ -> Some Journal.default_config);
  }

let controllers t =
  let admin = List.hd t.sites in
  let doc = Tdoc.of_string t.initial in
  List.map
    (fun site ->
      ( site,
        Controller.create ~eq:Char.equal ~features:t.features ~site ~admin
          ~policy:t.policy doc ))
    t.sites

let total_actions t =
  List.fold_left (fun acc (_, s) -> acc + List.length s) 0 t.scripts

let pp_edit ppf = function
  | Ins (p, c) -> Format.fprintf ppf "ins %d %c" p c
  | Del p -> Format.fprintf ppf "del %d" p
  | Up (p, c) -> Format.fprintf ppf "up %d %c" p c

let pp_action ppf = function
  | Edit e -> pp_edit ppf e
  | Policy op -> Admin_op.pp ppf op
  | Beacon -> Format.pp_print_string ppf "beacon"
  | Compact -> Format.pp_print_string ppf "compact"
  | Crash -> Format.pp_print_string ppf "crash"
  | Recover -> Format.pp_print_string ppf "recover"

let pp ppf t =
  Format.fprintf ppf "@[<v>%d sites (admin %d), initial %S%a@]" (List.length t.sites)
    (List.hd t.sites) t.initial
    (fun ppf scripts ->
      List.iter
        (fun (u, actions) ->
          if actions <> [] then
            Format.fprintf ppf "@ site %d: %a" u
              (Format.pp_print_list
                 ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
                 pp_action)
              actions)
        scripts)
    t.scripts
