(** Bounded scenarios for the model checker.

    A scenario fixes everything about a session {e except} the delivery
    order: the sites (the administrator first), the initial policy and
    document, per-site scripts of actions, and the feature set of the
    controllers.  {!Explore} then enumerates every interleaving of script
    steps and message deliveries — the non-determinism the network
    introduces and the paper's Figs. 2–4 holes live in.

    Script edits are written in visible coordinates and resolved against
    the issuing site's document {e at execution time} (clamped into
    range), so an action stays executable in every interleaving and each
    event is a deterministic function of the local state. *)

open Dce_core

type edit =
  | Ins of int * char  (** insert at visible position (clamped) *)
  | Del of int  (** delete at visible position (clamped; insert if empty) *)
  | Up of int * char  (** update at visible position (clamped; insert if empty) *)

type action =
  | Edit of edit  (** a cooperative operation: [Controller.generate] *)
  | Policy of Admin_op.t  (** an administrative operation (admin site only) *)
  | Beacon
      (** broadcast a stability beacon: the issuer's current clock and
          policy version go in flight to every other site, delivered (in
          any order) into [Controller.receive_beacon] *)
  | Compact
      (** garbage-collect the issuer's window:
          [Controller.compact] at the causally-stable frontier *)
  | Crash
      (** kill the site's process ([kill -9] flavor): the live controller
          is dropped; only what its journal ({!Journal}) made durable
          survives.  Requires [persist = Some _]. *)
  | Recover
      (** rebuild the site's controller through the {e real}
          [Persist.opendir] replay path over its journal image *)

type t = {
  sites : Subject.user list;  (** pairwise distinct; head is the administrator *)
  policy : Policy.t;
  initial : string;
  scripts : (Subject.user * action list) list;  (** per-site program order *)
  features : Controller.features;
  persist : Dce_store.Store.config option;
      (** when set, every site journals its inputs through the production
          store stack (in-memory backend) and [Crash]/[Recover] become
          executable *)
}

val make :
  ?features:Controller.features ->
  ?initial:string ->
  ?mixed:bool ->
  ?stability:int ->
  ?crash:int ->
  sites:int ->
  coop:int ->
  admin_ops:int ->
  unit ->
  t
(** The standard bounded scenario: sites [0..sites-1] with site 0
    administrator, [coop] cooperative operations dealt round-robin to the
    non-admin sites (insertions by default; with [mixed], an
    ins/del/up rotation), and [admin_ops] administrative operations at
    the admin site alternating a {e revocation} of user 1's insert right
    with its re-grant — the paper's adversarial shape.  The initial
    policy registers every site and grants everything to everyone; the
    initial document (default: long enough that deletions never empty
    it) seeds the text.  [features] defaults to [Controller.secure].
    [stability = k] weaves a [Beacon]; [Compact] pair into every site's
    script after each k-th action (and at script end), so exploration
    interleaves window compaction with every delivery order.
    [crash = k] weaves a [Crash]; [Recover] pair into every non-admin
    site's (woven) script after its k-th action and turns on journaling
    ([persist = Some Journal.default_config]), so exploration drives the
    crash window through every interleaving with deliveries, beacons,
    and compaction. *)

val controllers : t -> (Subject.user * char Controller.t) list
(** Fresh controllers for every site, in [sites] order. *)

val op_of_edit : char Dce_ot.Tdoc.t -> edit -> char Dce_ot.Op.t
(** Resolve an edit against the issuer's current document (see above). *)

val total_actions : t -> int

val pp : Format.formatter -> t -> unit
