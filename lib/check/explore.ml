open Dce_ot
open Dce_core
module Metrics = Dce_obs.Metrics
module Convergence = Dce_sim.Convergence
module Persist = Dce_store.Persist
module Proto = Dce_wire.Proto

type mid = Mcoop of Request.id | Madmin of int | Mbeacon of int * int

type event = Act of Subject.user | Dlv of Subject.user * mid

type stats = {
  states : int;
  distinct : int;
  dedup_hits : int;
  sleep_skips : int;
  frontiers : int;
  peak_inflight : int;
  max_depth : int;
  elapsed_s : float;
}

type violation = {
  schedule : event list;
  report : Convergence.report;
  detail : string;
}

type outcome = Exhausted | Found of violation | Capped

type mutant = No_clamp

(* ----- the transition system ----- *)

type payload =
  | Pmsg of char Controller.message
  | Pbeacon of Vclock.t * int  (* issuer clock and policy version *)

type msg = {
  mid : mid;
  payload : payload;
  pending : Subject.user list;  (* destinations not yet delivered to *)
}

(* What the site looked like the instant it died — captured so recovery
   can be compared against it.  [d_clean] records whether any
   *unjournaled* state change (a received beacon, a compaction) happened
   since the last checkpoint: when it did not, recovery must be
   fingerprint-exact; content fingerprint and clock equality are owed in
   either case (beacon tables and the compacted window are soft state,
   the document/policy/version are not). *)
type down = {
  d_fp : string;
  d_cfp : string;
  d_clock : Vclock.t;
  d_clean : bool;
}

type jsite = {
  jn : Journal.t;  (* the site's durable image (value semantics) *)
  jdown : down option;  (* [Some _]: crashed, awaiting [Recover] *)
  jclean : bool;  (* no unjournaled mutation since last checkpoint *)
}

type node = {
  ctrls : (Subject.user * char Controller.t) list;  (* scenario site order *)
  msgs : msg list;  (* in flight, creation order; fully delivered dropped *)
  scripts : (Subject.user * Scenario.action list) list;
  (* per-site beacon sequence numbers — per-site (not global) so that
     beacon actions at distinct sites still commute, which the sleep-set
     independence relation below relies on *)
  bseq : (Subject.user * int) list;
  (* whether any script contains a Beacon/Compact action.  When none
     does, the stability bounds and compaction cut drive no transition,
     so the fingerprint soundly omits them — keeping the state cache as
     coarse (and exploration as fast) as before stability existed. *)
  stab : bool;
  (* per-site durable journals; empty unless the scenario sets
     [persist], in which case every input is journaled through the real
     store stack and Crash/Recover become executable *)
  journals : (Subject.user * jsite) list;
}

let mid_of_message = function
  | Controller.Coop q -> Mcoop q.Request.id
  | Controller.Admin r -> Madmin r.Admin_op.version

let mid_to_string = function
  | Mcoop id -> Printf.sprintf "c%d.%d" id.Request.site id.Request.serial
  | Madmin v -> Printf.sprintf "a%d" v
  | Mbeacon (s, k) -> Printf.sprintf "b%d.%d" s k

let event_to_string = function
  | Act u -> Printf.sprintf "g%d" u
  | Dlv (u, m) -> Printf.sprintf "d%d:%s" u (mid_to_string m)

let event_of_string s =
  let fail () = Error (Printf.sprintf "cannot parse event %S" s) in
  try
    if String.length s = 0 then fail ()
    else if s.[0] = 'g' then Ok (Act (int_of_string (String.sub s 1 (String.length s - 1))))
    else
      match String.index_opt s ':' with
      | None -> fail ()
      | Some i when s.[0] = 'd' && i + 1 < String.length s ->
        let u = int_of_string (String.sub s 1 (i - 1)) in
        let m = String.sub s (i + 1) (String.length s - i - 1) in
        (match m.[0] with
         | 'a' -> Ok (Dlv (u, Madmin (int_of_string (String.sub m 1 (String.length m - 1)))))
         | 'c' ->
           (match String.split_on_char '.' (String.sub m 1 (String.length m - 1)) with
            | [ site; serial ] ->
              Ok
                (Dlv
                   ( u,
                     Mcoop
                       { Request.site = int_of_string site; serial = int_of_string serial }
                   ))
            | _ -> fail ())
         | 'b' ->
           (match String.split_on_char '.' (String.sub m 1 (String.length m - 1)) with
            | [ site; k ] ->
              Ok (Dlv (u, Mbeacon (int_of_string site, int_of_string k)))
            | _ -> fail ())
         | _ -> fail ())
      | Some _ -> fail ()
  with Failure _ -> fail ()

let schedule_to_string events = String.concat " " (List.map event_to_string events)

let schedule_of_string s =
  String.split_on_char ' ' (String.map (function ',' | '\n' | '\t' -> ' ' | c -> c) s)
  |> List.filter (fun w -> w <> "")
  |> List.fold_left
       (fun acc w ->
         match (acc, event_of_string w) with
         | Error _, _ -> acc
         | _, (Error _ as e) -> e
         | Ok evs, Ok ev -> Ok (ev :: evs))
       (Ok [])
  |> Result.map List.rev

let initial scenario =
  let ctrls = Scenario.controllers scenario in
  {
    ctrls;
    msgs = [];
    scripts = List.filter (fun (_, s) -> s <> []) scenario.Scenario.scripts;
    bseq = [];
    stab =
      List.exists
        (fun (_, s) ->
          List.exists
            (function Scenario.Beacon | Scenario.Compact -> true | _ -> false)
            s)
        scenario.Scenario.scripts;
    journals =
      (match scenario.Scenario.persist with
       | None -> []
       | Some config ->
         List.map
           (fun (u, c) ->
             (u, { jn = Journal.create ~config c; jdown = None; jclean = true }))
           ctrls);
  }

let set_ctrl u c node =
  {
    node with
    ctrls = List.map (fun (v, c') -> if v = u then (v, c) else (v, c')) node.ctrls;
  }

let set_jsite u j node =
  {
    node with
    journals = List.map (fun (v, j') -> if v = u then (v, j) else (v, j')) node.journals;
  }

let is_down node u =
  match List.assoc_opt u node.journals with
  | Some { jdown = Some _; _ } -> true
  | _ -> false

let all_alive node = List.for_all (fun (_, j) -> j.jdown = None) node.journals

(* Append one input record through the site's journal — the production
   [Persist.record] path — carrying the post-apply controller for the
   cadence checkpoint.  A checkpoint makes the durable image exact
   again. *)
let journal_record node u r c =
  match List.assoc_opt u node.journals with
  | None -> node
  | Some j ->
    let jn, checkpointed = Journal.record j.jn r c in
    set_jsite u { j with jn; jclean = (checkpointed || j.jclean) } node

let dirty_journal node u =
  match List.assoc_opt u node.journals with
  | None -> node
  | Some j -> set_jsite u { j with jclean = false } node

let put_in_flight node src payloads =
  let dests = List.filter (fun v -> v <> src) (List.map fst node.ctrls) in
  let fresh =
    List.map
      (fun m -> { mid = mid_of_message m; payload = Pmsg m; pending = dests })
      payloads
  in
  { node with msgs = node.msgs @ fresh }

(* Execute one event.  Every step is a deterministic function of the
   node, so a schedule identifies a unique run.  Returns the successor
   and a human-readable line describing what happened.  [mutant]
   deliberately miscompiles one discipline (for checker-sanity runs):
   [No_clamp] compacts straight to the stability frontier, skipping the
   durability clamp and the pre-compaction checkpoint. *)
let exec ?mutant node = function
  | Act u ->
    let action, rest =
      match List.assoc u node.scripts with
      | a :: rest -> (a, rest)
      | [] | (exception Not_found) -> invalid_arg "Explore.exec: no script step"
    in
    let node =
      {
        node with
        scripts =
          List.filter_map
            (fun (v, s) ->
              if v <> u then Some (v, s) else if rest = [] then None else Some (v, rest))
            node.scripts;
      }
    in
    let c = List.assoc u node.ctrls in
    (match action with
     | Scenario.Edit e ->
       let op = Scenario.op_of_edit (Controller.document c) e in
       (match Controller.generate c op with
        | c, Controller.Accepted m ->
          (* journal before broadcast, like the daemons: a crash must
             never leave the group holding a request its origin site no
             longer remembers *)
          let node = journal_record (set_ctrl u c node) u (Persist.Generated op) c in
          ( put_in_flight node u [ m ],
            Format.asprintf "site %d: generate %a -> %s" u (Op.pp Fmt.char) op
              (mid_to_string (mid_of_message m)) )
        | c, Controller.Denied reason ->
          ( set_ctrl u c node,
            Format.asprintf "site %d: generate %a denied locally (%s)" u (Op.pp Fmt.char)
              op reason ))
     | Scenario.Policy op ->
       (match Controller.admin_update c op with
        | Ok (c, m) ->
          let node = journal_record (set_ctrl u c node) u (Persist.Admin_cmd op) c in
          ( put_in_flight node u [ m ],
            Format.asprintf "site %d: admin %a -> %s" u Admin_op.pp op
              (mid_to_string (mid_of_message m)) )
        | Error e ->
          failwith
            (Format.asprintf "administrative script action %a failed: %s" Admin_op.pp op e))
     | Scenario.Beacon ->
       let clock, version = Controller.beacon c in
       let k = (match List.assoc_opt u node.bseq with Some k -> k | None -> 0) + 1 in
       let mid = Mbeacon (u, k) in
       let dests = List.filter (fun v -> v <> u) (List.map fst node.ctrls) in
       ( {
           node with
           bseq = (u, k) :: List.remove_assoc u node.bseq;
           msgs = node.msgs @ [ { mid; payload = Pbeacon (clock, version); pending = dests } ];
         },
         Printf.sprintf "site %d: beacon -> %s" u (mid_to_string mid) )
     | Scenario.Compact ->
       (match List.assoc_opt u node.journals with
        | None ->
          let c = Controller.compact c in
          ( set_ctrl u c node,
            Printf.sprintf "site %d: compact (window %d)" u (Controller.window_len c) )
        | Some j ->
          (match mutant with
           | Some No_clamp ->
             (* the seeded bug: garbage-collect to the stability
                frontier with no regard for what is durable *)
             let c = Controller.compact c in
             ( set_ctrl u c (set_jsite u { j with jclean = false } node),
               Printf.sprintf "site %d: compact UNCLAMPED (window %d)" u
                 (Controller.window_len c) )
           | None ->
             (* the hub/p2pedit discipline: clamp the cut to the durable
                checkpoint, taking a fresh checkpoint first when the
                frontier has moved past it (durability leads, GC
                follows) *)
             let fresh_enough cut = Vclock.leq (Controller.stable_frontier c) cut in
             let j, limit =
               match Journal.cut j.jn with
               | Some cut when fresh_enough cut -> (j, Some cut)
               | _ ->
                 let jn = Journal.checkpoint j.jn c in
                 ({ j with jn; jclean = true }, Journal.cut jn)
             in
             (match limit with
              | None ->
                ( set_jsite u j node,
                  Printf.sprintf "site %d: compact skipped (no durable cut)" u )
              | Some limit ->
                let c = Controller.compact ~limit c in
                ( set_ctrl u c (set_jsite u { j with jclean = false } node),
                  Printf.sprintf "site %d: compact (window %d, clamped)" u
                    (Controller.window_len c) ))))
     | Scenario.Crash ->
       (match List.assoc_opt u node.journals with
        | None ->
          failwith
            (Printf.sprintf "site %d: crash action but the scenario has no persist config"
               u)
        | Some j ->
          let d =
            {
              d_fp = Proto.fingerprint Proto.char_codec c;
              d_cfp = Proto.content_fingerprint Proto.char_codec c;
              d_clock = Controller.clock c;
              d_clean = j.jclean;
            }
          in
          let jn = Journal.crash j.jn in
          (* fallback oracle: with the newest snapshot corrupted,
             recovery must rebuild from the previous generation and its
             log — reaching *exactly* the durable cut, because wal-(N-1)
             holds precisely the inputs between checkpoints N-1 and N.
             An unclamped compaction before checkpoint N would have made
             that pair unreplayable. *)
          (match Journal.corrupt_newest_snapshot jn with
           | None -> ()  (* fewer than two generations: no fallback pair yet *)
           | Some corrupted ->
             (match Journal.recover corrupted with
              | Error e ->
                failwith
                  (Printf.sprintf
                     "site %d: fallback recovery (corrupt newest snapshot) failed: %s" u e)
              | Ok (_, r) ->
                let cut = Option.value ~default:Vclock.empty (Journal.cut jn) in
                let rclock = Controller.clock r.Journal.controller in
                if not (Vclock.equal rclock cut) then
                  failwith
                    (Format.asprintf
                       "site %d: fallback recovery reached clock (%a), durable cut is \
                        (%a) — the previous snapshot + its log do not reproduce the \
                        newest checkpoint"
                       u Vclock.pp rclock Vclock.pp cut)));
          ( set_jsite u { j with jn; jdown = Some d } node,
            Printf.sprintf "site %d: crash (kill -9; %d snapshot generations durable)" u
              (List.length (Journal.generations jn)) ))
     | Scenario.Recover ->
       (match List.assoc_opt u node.journals with
        | Some { jn; jdown = Some d; jclean = _ } ->
          (match Journal.recover jn with
           | Error e -> failwith (Printf.sprintf "site %d: recovery failed: %s" u e)
           | Ok (jn, r) ->
             let c = r.Journal.controller in
             let rclock = Controller.clock c in
             if not (Vclock.equal rclock d.d_clock) then
               failwith
                 (Format.asprintf
                    "site %d: recovered clock (%a) differs from pre-crash clock (%a)" u
                    Vclock.pp rclock Vclock.pp d.d_clock);
             if Proto.content_fingerprint Proto.char_codec c <> d.d_cfp then
               failwith
                 (Printf.sprintf
                    "site %d: recovered document/policy/version differ from the \
                     pre-crash state (replay through the store diverged)"
                    u);
             if d.d_clean && Proto.fingerprint Proto.char_codec c <> d.d_fp then
               failwith
                 (Printf.sprintf
                    "site %d: recovery not fingerprint-exact although nothing \
                     unjournaled (beacon/compaction) happened since the last checkpoint"
                    u);
             (* the recovered state is, by construction, exactly what a
                future replay reproduces — the site is clean again *)
             ( set_ctrl u c (set_jsite u { jn; jdown = None; jclean = true } node),
               Printf.sprintf "site %d: recover (replayed %d, %s)" u r.Journal.replayed
                 (if d.d_clean then "fingerprint-exact" else "content-exact") ))
        | _ -> failwith (Printf.sprintf "site %d: recover without a preceding crash" u)))
  | Dlv (u, mid) ->
    let msg =
      match List.find_opt (fun m -> m.mid = mid) node.msgs with
      | Some m when List.mem u m.pending -> m
      | _ -> invalid_arg "Explore.exec: delivery not enabled"
    in
    let msgs =
      List.filter_map
        (fun m ->
          if m.mid <> mid then Some m
          else
            match List.filter (fun v -> v <> u) m.pending with
            | [] -> None
            | pending -> Some { m with pending })
        node.msgs
    in
    let c, emitted =
      match msg.payload with
      | Pmsg payload -> Controller.receive (List.assoc u node.ctrls) payload
      | Pbeacon (clock, version) ->
        let peer = match mid with Mbeacon (s, _) -> s | _ -> assert false in
        (Controller.receive_beacon (List.assoc u node.ctrls) ~peer ~clock ~version, [])
    in
    let node = set_ctrl u c { node with msgs } in
    let node =
      match msg.payload with
      (* journal a received message after the controller accepted it
         (the daemons' arrival-order discipline); beacons are soft state
         and never journaled — the durable image goes stale *)
      | Pmsg payload -> journal_record node u (Persist.Received payload) c
      | Pbeacon _ -> dirty_journal node u
    in
    let node = put_in_flight node u emitted in
    ( node,
      Format.asprintf "deliver %s -> site %d%s" (mid_to_string mid) u
        (match emitted with
         | [] -> ""
         | ms ->
           Printf.sprintf " (emits %s)"
             (String.concat ", " (List.map (fun m -> mid_to_string (mid_of_message m)) ms)))
    )

(* Enabled events, in a fixed deterministic order: script steps in site
   order, then deliveries in message creation order and destination
   order.  A down site takes no deliveries (its process is gone — the
   message waits in flight); its script stays enabled, the next step
   being its [Recover]. *)
let enabled node =
  List.map (fun (u, _) -> Act u) node.scripts
  @ List.concat_map
      (fun m ->
        List.filter_map
          (fun u -> if is_down node u then None else Some (Dlv (u, m.mid)))
          m.pending)
      node.msgs

let in_flight node =
  List.fold_left (fun acc m -> acc + List.length m.pending) 0 node.msgs

(* ----- canonical state fingerprint -----

   [Controller.t] holds closures (the element equality, the trace sink),
   so structural hashing is out; instead every semantically relevant
   component is printed in a canonical textual form and digested.
   Vector clocks print their sorted bindings; the in-flight set prints
   as a multiset sorted by message identity (two event orders that
   produce the same messages in different creation order reach the same
   fingerprint).  Receive-queue *order* is preserved — drain order is
   semantically significant — and each request prints its generation
   form and causal context, which [Request.pp] omits but which drive
   future transitions. *)

let fp_clock ppf k =
  List.iter (fun (s, n) -> Format.fprintf ppf "%d:%d," s n) (Vclock.to_list k)

let fp_op ppf op = Op.pp Fmt.char ppf op

let fp_request ppf (q : char Request.t) =
  Format.fprintf ppf "q%d.%d<%s>%a v%d c(%a) o%a g%a;" q.Request.id.Request.site
    q.Request.id.Request.serial
    (match q.Request.dep with
     | None -> "-"
     | Some d -> Printf.sprintf "%d.%d" d.Request.site d.Request.serial)
    Request.pp_flag q.Request.flag q.Request.policy_version fp_clock q.Request.ctx fp_op
    q.Request.op fp_op q.Request.gen_op

let fp_admin_request ppf (r : Admin_op.request) =
  Format.fprintf ppf "r%d@%d %a c(%a);" r.Admin_op.version r.Admin_op.admin Admin_op.pp
    r.Admin_op.op fp_clock r.Admin_op.ctx

let fp_cell ppf (cell : char Tdoc.cell) =
  Format.fprintf ppf "%c.%d" cell.Tdoc.elt cell.Tdoc.hidden;
  List.iter
    (fun (w : char Tdoc.write) ->
      Format.fprintf ppf "[%d.%d=%c-%d]" w.Tdoc.wtag.Op.stamp w.Tdoc.wtag.Op.site
        w.Tdoc.value w.Tdoc.retracted)
    cell.Tdoc.writes;
  Format.fprintf ppf ","

let fp_entry ppf (e : char Oplog.entry) =
  (match e.Oplog.role with
   | Oplog.Normal -> ()
   | Oplog.Canceller id ->
     Format.fprintf ppf "X%d.%d>" id.Request.site id.Request.serial);
  fp_request ppf e.Oplog.req

let fp_bound ppf (u, (k, v)) = Format.fprintf ppf "%d<(%a)%d;" u fp_clock k v

let fp_controller ?(stab = true) ppf c =
  let st = Controller.dump c in
  Format.fprintf ppf "s%d n%d k(%a)|D:" st.Controller.st_site st.Controller.st_serial
    fp_clock st.Controller.st_clock;
  List.iter (fp_cell ppf) st.Controller.st_doc;
  Format.fprintf ppf "|H:";
  List.iter (fp_entry ppf) st.Controller.st_oplog;
  (* compaction state and stability bounds drive future compact/beacon
     transitions, so in a stability scenario they are part of the
     canonical state (the bound tables come sorted from
     [User_map.bindings]) *)
  if stab then begin
    Format.fprintf ppf "|G:%a|Pi:" fp_clock st.Controller.st_compacted;
    List.iter (fp_bound ppf) st.Controller.st_peer_integrated;
    Format.fprintf ppf "|Ph:";
    List.iter (fp_bound ppf) st.Controller.st_peer_admin_hint;
    Format.fprintf ppf "|Pb:";
    List.iter (fp_bound ppf) st.Controller.st_peer_beacon
  end;
  Format.fprintf ppf "|L:";
  List.iter (fp_admin_request ppf) st.Controller.st_admin_requests;
  Format.fprintf ppf "|F:";
  List.iter (fp_request ppf) st.Controller.st_coop_queue;
  Format.fprintf ppf "|Q:";
  List.iter (fp_admin_request ppf) st.Controller.st_admin_queue

let fp_message ppf = function
  | Pmsg (Controller.Coop q) -> fp_request ppf q
  | Pmsg (Controller.Admin r) -> fp_admin_request ppf r
  | Pbeacon (k, v) -> Format.fprintf ppf "B(%a)%d;" fp_clock k v

let fingerprint node =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  List.iter
    (fun (u, c) -> Format.fprintf ppf "C%d{%a}" u (fp_controller ~stab:node.stab) c)
    node.ctrls;
  let keyed =
    List.map
      (fun m ->
        ( mid_to_string m.mid,
          Format.asprintf "%a->%s" fp_message m.payload
            (String.concat "," (List.map string_of_int (List.sort compare m.pending))) ))
      node.msgs
    |> List.sort compare
  in
  List.iter (fun (k, v) -> Format.fprintf ppf "M%s{%s}" k v) keyed;
  List.iter
    (fun (u, s) -> Format.fprintf ppf "S%d:%d" u (List.length s))
    node.scripts;
  List.iter
    (fun (u, k) -> Format.fprintf ppf "B%d:%d" u k)
    (List.sort compare node.bseq);
  (* the durable image is part of the state: two schedules that leave
     different bytes on "disk" must not be deduplicated, or crash
     branches would be pruned unsoundly *)
  List.iter
    (fun (u, j) ->
      Format.fprintf ppf "J%d:%s%s%s" u (Journal.fingerprint j.jn)
        (match j.jdown with
         | None -> ""
         | Some d -> if d.d_clean then "!c" else "!")
        (if j.jclean then "+" else "-"))
    node.journals;
  Format.pp_print_flush ppf ();
  Digest.string (Buffer.contents buf)

(* ----- the frontier oracle -----

   Checked at every quiescent frontier (no message in flight).
   {!Convergence.check} covers the replicated-state oracles; on top of
   it, the *security* oracle decides each request's legality from the
   administrative log's ground truth and compares it with the fate the
   sites agreed on — this is what catches the Fig. 3 hole, where every
   site consistently accepts a request the policy history forbids.

   Legality of a cooperative request generated at policy version [v]:
   no version in [[v, hi]] denies the right its generation form
   exercises, where [hi] is the version *preceding its validation* when
   the administrator validated it (validation totally orders the
   request before any later revocation — the Fig. 4 mechanism), and the
   current version otherwise.  Requests issued by the administrator of
   their generation version are legal by authority. *)

let denial_between log ~lo ~hi ~user ~right ~pos =
  let rec go v =
    if v > hi then None
    else
      match Admin_log.policy_at log v with
      | None -> None
      | Some p -> if Policy.check p ~user ~right ~pos then go (v + 1) else Some v
  in
  go (max 0 lo)

let validate_version log id =
  List.find_map
    (fun (r : Admin_op.request) ->
      match r.Admin_op.op with
      | Admin_op.Validate id' when Request.id_equal id id' -> Some r.Admin_op.version
      | _ -> None)
    (Admin_log.requests log)

let legal log (q : char Request.t) =
  let user = q.Request.id.Request.site in
  match Right.of_op q.Request.gen_op with
  | None -> true
  | Some right ->
    if Admin_log.admin_at log q.Request.policy_version = Some user then true
    else
      let hi =
        match validate_version log q.Request.id with
        | Some v -> v - 1
        | None -> Admin_log.version log
      in
      let pos = Op.pos q.Request.gen_op in
      denial_between log ~lo:q.Request.policy_version ~hi ~user ~right ~pos = None

let security_violation ctrls =
  match ctrls with
  | [] -> None
  | (_, c0) :: _ ->
    let log = Controller.admin_log c0 in
    List.find_map
      (fun (q : char Request.t) ->
        match (q.Request.flag, legal log q) with
        | Request.Valid, false ->
          Some
            (Format.asprintf
               "accepted-illegal: request %a (%a by user %d at version %d) is valid at \
                every site but a version in its missed interval denies it"
               Request.pp_id q.Request.id fp_op q.Request.gen_op q.Request.id.Request.site
               q.Request.policy_version)
        | Request.Invalid, true ->
          Some
            (Format.asprintf
               "rejected-legal: request %a (%a by user %d at version %d) was invalidated \
                although every policy version it crossed grants it"
               Request.pp_id q.Request.id fp_op q.Request.gen_op q.Request.id.Request.site
               q.Request.policy_version)
        | _ -> None)
      (Oplog.requests (Controller.oplog c0))

let admin_log_violation ctrls =
  match ctrls with
  | [] | [ _ ] -> None
  | (u0, c0) :: rest ->
    let dump c =
      List.map
        (fun r -> Format.asprintf "%a" fp_admin_request r)
        (Admin_log.requests (Controller.admin_log c))
    in
    let d0 = dump c0 in
    List.find_map
      (fun (u, c) ->
        if dump c = d0 then None
        else
          Some
            (Printf.sprintf
               "administrative logs of sites %d and %d disagree (%d vs %d requests)" u0 u
               (List.length d0)
               (List.length (dump c))))
      rest

(* The PR 9 cross-layer invariant, checked at *every* explored state
   (not only frontiers): a journaled site must never garbage-collect
   past its durable cut, or a crash in that state would recover a
   snapshot whose window cannot replay the log ("durability leads, GC
   follows").  This is the oracle that catches the [No_clamp] mutant
   directly, whatever the interleaving. *)
let durability_violation node =
  List.find_map
    (fun (u, j) ->
      match j.jdown with
      | Some _ -> None  (* the live controller is gone; nothing to GC *)
      | None ->
        let c = List.assoc u node.ctrls in
        let cut = Option.value ~default:Vclock.empty (Journal.cut j.jn) in
        let gc = Controller.compacted_upto c in
        if Vclock.leq gc cut then None
        else
          Some
            (Format.asprintf
               "site %d: durability invariant broken — window compacted to (%a), past \
                the durable cut (%a); a crash here leaves the fallback snapshot unable \
                to replay its log"
               u Vclock.pp gc Vclock.pp cut))
    node.journals

let frontier_violation ctrls =
  let cs = List.map snd ctrls in
  let report = Convergence.check cs in
  if not (Convergence.ok report) then
    let detail =
      match Convergence.explain cs with
      | Some d -> d
      | None -> Format.asprintf "%a" Convergence.pp report
    in
    Some (report, detail)
  else
    match admin_log_violation ctrls with
    | Some d -> Some (report, d)
    | None -> (
      match security_violation ctrls with
      | Some d -> Some (report, d)
      | None -> None)

(* ----- sleep-set DFS with state caching ----- *)

let site_of_event = function Act u -> u | Dlv (u, _) -> u

(* Events at distinct sites commute: they touch different controllers,
   and the in-flight set is order-canonical.  Events at one site never
   commute (local execution order is semantically significant). *)
let independent a b = site_of_event a <> site_of_event b

let subset a b = List.for_all (fun x -> List.mem x b) a

exception Stop of outcome

let run ?metrics ?(max_states = 1_000_000) ?mutant scenario =
  let t0 = Sys.time () in
  let states = ref 0
  and distinct = ref 0
  and dedup_hits = ref 0
  and sleep_skips = ref 0
  and frontiers = ref 0
  and peak_inflight = ref 0
  and max_depth = ref 0 in
  let tick name =
    match metrics with
    | None -> fun () -> ()
    | Some m ->
      let c = Metrics.counter m ("check." ^ name) in
      fun () -> Metrics.incr c
  in
  let m_states = tick "states"
  and m_distinct = tick "distinct"
  and m_dedup = tick "dedup_hits"
  and m_sleep = tick "sleep_skips"
  and m_frontiers = tick "frontiers" in
  let visited : (string, event list) Hashtbl.t = Hashtbl.create 4096 in
  let rec explore node sleep path depth =
    incr states;
    m_states ();
    if !states > max_states then raise (Stop Capped);
    if depth > !max_depth then max_depth := depth;
    let inflight = in_flight node in
    if inflight > !peak_inflight then peak_inflight := inflight;
    let proceed sleep =
      (match durability_violation node with
       | Some detail ->
         let report = Convergence.check (List.map snd node.ctrls) in
         raise (Stop (Found { schedule = List.rev path; report; detail }))
       | None -> ());
      if node.msgs = [] && all_alive node then begin
        incr frontiers;
        m_frontiers ();
        match frontier_violation node.ctrls with
        | Some (report, detail) ->
          raise (Stop (Found { schedule = List.rev path; report; detail }))
        | None -> ()
      end;
      let current_sleep = ref sleep in
      List.iter
        (fun e ->
          if List.mem e !current_sleep then begin
            incr sleep_skips;
            m_sleep ()
          end
          else begin
            let child, _ =
              try exec ?mutant node e
              with
              | Document.Edit_conflict msg ->
                let report = Convergence.check (List.map snd node.ctrls) in
                raise
                  (Stop
                     (Found
                        {
                          schedule = List.rev (e :: path);
                          report;
                          detail =
                            Printf.sprintf
                              "crash: transformation conflict while executing %s (%s)"
                              (event_to_string e) msg;
                        }))
              | Failure msg ->
                let report = Convergence.check (List.map snd node.ctrls) in
                raise
                  (Stop
                     (Found
                        {
                          schedule = List.rev (e :: path);
                          report;
                          detail =
                            Printf.sprintf "crash: %s while executing %s" msg
                              (event_to_string e);
                        }))
            in
            explore child
              (List.filter (fun t -> independent t e) !current_sleep)
              (e :: path) (depth + 1);
            current_sleep := e :: !current_sleep
          end)
        (enabled node)
    in
    let fp = fingerprint node in
    match Hashtbl.find_opt visited fp with
    | Some stored when subset stored sleep ->
      incr dedup_hits;
      m_dedup ()
    | Some stored ->
      (* Reached again with a sleep set that allows events the earlier
         visit slept through: re-explore with the intersection (the only
         events *both* visits may soundly skip), which keeps the
         combination of sleep sets and state caching exhaustive. *)
      let inter = List.filter (fun e -> List.mem e sleep) stored in
      Hashtbl.replace visited fp inter;
      proceed inter
    | None ->
      incr distinct;
      m_distinct ();
      Hashtbl.add visited fp sleep;
      proceed sleep
  in
  let outcome =
    try
      explore (initial scenario) [] [] 0;
      Exhausted
    with Stop o -> o
  in
  ( outcome,
    {
      states = !states;
      distinct = !distinct;
      dedup_hits = !dedup_hits;
      sleep_skips = !sleep_skips;
      frontiers = !frontiers;
      peak_inflight = !peak_inflight;
      max_depth = !max_depth;
      elapsed_s = Sys.time () -. t0;
    } )

(* ----- replay ----- *)

type replay = {
  controllers : (Subject.user * char Controller.t) list;
  executed : event list;
  skipped : int;
  messages : int;
  log : string list;
  violation : string option;
}

let replay ?(drain = true) ?mutant scenario schedule =
  let seen = Hashtbl.create 16 in
  let messages = ref 0 in
  let node = ref (initial scenario) in
  let executed = ref [] and skipped = ref 0 and log = ref [] in
  let crashed = ref None in
  let count_msgs n =
    List.iter
      (fun m ->
        if not (Hashtbl.mem seen m.mid) then begin
          Hashtbl.add seen m.mid ();
          incr messages
        end)
      n.msgs
  in
  let is_enabled n = function
    | Act u -> List.mem_assoc u n.scripts
    | Dlv (u, mid) -> (
      match List.find_opt (fun m -> m.mid = mid) n.msgs with
      | Some m -> List.mem u m.pending
      | None -> false)
  in
  let step e =
    executed := e :: !executed;
    match exec ?mutant !node e with
    | n, line ->
      node := n;
      count_msgs n;
      log := line :: !log;
      (* latch the invariant like the explorer does: a later checkpoint
         could advance the cut and mask the violation *)
      if !crashed = None then
        crashed := durability_violation n
    | exception Document.Edit_conflict msg ->
      crashed :=
        Some
          (Printf.sprintf "crash: transformation conflict while executing %s (%s)"
             (event_to_string e) msg)
    | exception Failure msg ->
      crashed :=
        Some (Printf.sprintf "crash: %s while executing %s" msg (event_to_string e))
  in
  List.iter
    (fun e ->
      if !crashed <> None then ()
      else if is_enabled !node e then step e
      else incr skipped)
    schedule;
  let rec drain_loop () =
    if !crashed = None && drain then
      match
        List.find_opt (function Dlv _ -> true | Act _ -> false) (enabled !node)
      with
      | Some e ->
        step e;
        drain_loop ()
      | None -> ()
  in
  drain_loop ();
  let violation =
    match !crashed with
    | Some _ as c -> c
    | None ->
      if !node.msgs <> [] || not (all_alive !node) then None
      else Option.map snd (frontier_violation !node.ctrls)
  in
  {
    controllers = !node.ctrls;
    executed = List.rev !executed;
    skipped = !skipped;
    messages = !messages;
    log = List.rev !log;
    violation;
  }
