(** Exhaustive bounded exploration of delivery interleavings.

    The explorer runs a {!Scenario} through the real
    [Dce_core.Controller] — this is a race detector for the protocol
    itself, not a reimplementation of it.  The transition system's
    events are:

    - [Act u]: site [u] executes the next step of its script (a
      cooperative generation or an administrative operation), which may
      put a message in flight to every other site;
    - [Dlv (u, m)]: the in-flight message [m] is delivered to site [u]
      ([Controller.receive]) — the administrator's reception can itself
      emit validation messages, which join the in-flight set.

    Every interleaving of these events is explored.  At each {e quiescent
    frontier} — a state with no message in flight — the paper's oracles
    must hold: convergence of document/policy/version
    ({!Dce_sim.Convergence}), no accepted-illegal or rejected-legal
    request (the Figs. 2–4 holes, checked against the administrative
    log's ground truth), and administrative-log agreement.

    Tractability comes from two mechanisms.  {e Canonical state hashing}:
    semantically equal states reached by different event orders are
    fingerprinted identically (in-flight messages as a multiset) and
    explored once.  {e Sleep sets}: events at different sites commute, so
    after exploring event [a] before [b], the [b]-first branch is pruned
    from re-exploring [a] at the same point (Godefroid-style sleep sets,
    sound with the state cache by re-exploring a cached state whenever it
    is reached with a sleep set that does not contain the stored one). *)

open Dce_core

type mid =
  | Mcoop of Dce_ot.Request.id
  | Madmin of int  (** administrative requests are keyed by version *)
  | Mbeacon of int * int
      (** stability beacons, keyed by (issuer site, per-site sequence
          number); delivery feeds [Controller.receive_beacon] and never
          emits follow-up messages *)

type event = Act of Subject.user | Dlv of Subject.user * mid

type stats = {
  states : int;  (** search nodes visited (post-dedup visits included) *)
  distinct : int;  (** distinct canonical states *)
  dedup_hits : int;  (** nodes pruned by the state cache *)
  sleep_skips : int;  (** enabled events pruned by sleep sets *)
  frontiers : int;  (** quiescent frontiers checked *)
  peak_inflight : int;  (** most messages simultaneously in flight *)
  max_depth : int;
  elapsed_s : float;
}

type violation = {
  schedule : event list;  (** the violating schedule, root to frontier *)
  report : Dce_sim.Convergence.report;
  detail : string;  (** first failing oracle, in words *)
}

type outcome =
  | Exhausted  (** every interleaving explored, all frontiers green *)
  | Found of violation
  | Capped  (** gave up at [max_states] *)

type mutant = No_clamp
      (** checker-sanity seeded bug: [Compact] garbage-collects straight
          to the stability frontier, skipping the durability clamp and
          the pre-compaction checkpoint (the discipline the hub and
          p2pedit implement).  A crash-mode run must catch it. *)

val run :
  ?metrics:Dce_obs.Metrics.t ->
  ?max_states:int ->
  ?mutant:mutant ->
  Scenario.t ->
  outcome * stats
(** [metrics] (optional) accumulates [check.states], [check.distinct],
    [check.dedup_hits], [check.sleep_skips] and [check.frontiers]
    counters alongside the returned {!stats}.

    When the scenario sets [persist], every site journals its inputs
    through the production store stack ({!Journal}) and three more
    oracle families run:
    - at {e every} explored state, no live site's compacted window may
      exceed its durable cut (durability leads, GC follows);
    - at every [Crash], a corrupted-newest-snapshot copy of the journal
      must recover through the fallback generation to {e exactly} the
      durable cut;
    - at every [Recover], the rebuilt controller must match the
      pre-crash one: clock and content fingerprint always, full
      fingerprint whenever nothing unjournaled (received beacons,
      compaction) happened since the last checkpoint.
    Quiescent-frontier oracles only run when every site is alive. *)

(* {2 Replay} *)

type replay = {
  controllers : (Subject.user * char Controller.t) list;
  executed : event list;  (** events actually executed, drain included *)
  skipped : int;  (** schedule entries that were not enabled *)
  messages : int;  (** messages put in flight over the run *)
  log : string list;  (** one human-readable line per executed event *)
  violation : string option;  (** oracle diagnosis of the final state *)
}

val replay : ?drain:bool -> ?mutant:mutant -> Scenario.t -> event list -> replay
(** Execute one specific schedule (events that are not enabled are
    skipped), then — unless [drain] is [false] — deliver every remaining
    in-flight message in deterministic order so the final state is a
    quiescent frontier, and run the oracles on it.  In a journaled
    scenario the durability invariant is checked (and latched) after
    every step, exactly as {!run} checks it at every state. *)

(* {2 Schedule scripts}

   The textual form printed by shrunk counterexamples and accepted by
   [dcecheck --schedule]: events separated by whitespace or commas,
   [gU] for [Act U], [dU:cS.N] for delivery of cooperative request [S.N]
   to site [U], [dU:aV] for delivery of administrative request version
   [V] to site [U], [dU:bS.K] for delivery of site [S]'s [K]-th
   stability beacon to site [U]. *)

val event_to_string : event -> string
val event_of_string : string -> (event, string) result
val schedule_to_string : event list -> string
val schedule_of_string : string -> (event list, string) result
