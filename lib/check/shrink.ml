let fails ?mutant scenario schedule =
  (Explore.replay ?mutant scenario schedule).Explore.violation <> None

(* Split [l] into [n] chunks whose lengths differ by at most one. *)
let chunks n l =
  let len = List.length l in
  let base = len / n and extra = len mod n in
  let rec take k l =
    if k = 0 then ([], l)
    else
      match l with
      | [] -> ([], [])
      | x :: rest ->
        let got, left = take (k - 1) rest in
        (x :: got, left)
  in
  let rec go i l =
    if i >= n || l = [] then []
    else
      let size = base + if i < extra then 1 else 0 in
      let chunk, rest = take size l in
      chunk :: go (i + 1) rest
  in
  go 0 l

let remove_chunk i cs = List.concat (List.filteri (fun j _ -> j <> i) cs)

let minimize ?mutant scenario schedule =
  if not (fails ?mutant scenario schedule) then schedule
  else
    let rec ddmin current n =
      let len = List.length current in
      if len <= 1 then current
      else
        let n = min n len in
        let cs = chunks n current in
        let reduced =
          List.find_map
            (fun i ->
              let candidate = remove_chunk i cs in
              if candidate <> [] && fails ?mutant scenario candidate then Some candidate
              else None)
            (List.init (List.length cs) Fun.id)
        in
        match reduced with
        | Some candidate -> ddmin candidate (max (n - 1) 2)
        | None -> if n < len then ddmin current (min len (2 * n)) else current
    in
    ddmin schedule 2
