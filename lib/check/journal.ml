open Dce_ot
open Dce_core
module Io = Dce_store.Io
module Store = Dce_store.Store
module Snapshot = Dce_store.Snapshot
module Persist = Dce_store.Persist
module Proto = Dce_wire.Proto

type t = {
  image : Io.Mem.image;
  cfg : Store.config;
  cut : Vclock.t option;
}

(* one virtual directory per journal; images never mix *)
let dir = "/j"

let default_config =
  { Store.fsync = Dce_store.Wal.Always; snapshot_every = 2; keep_generations = 2 }

(* Restore a private world from the image, open the production journal
   over it, run [f], and hand back whatever [f] captured.  [opendir]
   itself replays the log — that cost is the point: every operation
   crosses the same recovery path the daemons use. *)
let with_persist t f =
  let w = Io.Mem.restore t.image in
  match
    Persist.opendir ~config:t.cfg ~io:(Io.Mem.io w) ~eq:Char.equal
      ~codec:Proto.char_codec dir
  with
  | Error e -> failwith ("checker journal: reopen failed: " ^ e)
  | Ok (p, r) ->
    let x = f w p r in
    Persist.close p;
    x

let create ?(config = default_config) c =
  let w = Io.Mem.create () in
  match
    Persist.opendir ~config ~io:(Io.Mem.io w) ~eq:Char.equal ~codec:Proto.char_codec dir
  with
  | Error e -> failwith ("checker journal: open failed: " ^ e)
  | Ok (p, _) -> (
    match Persist.checkpoint p c with
    | Error e -> failwith ("checker journal: initial checkpoint failed: " ^ e)
    | Ok () ->
      let cut = Persist.checkpoint_clock p in
      Persist.close p;
      { image = Io.Mem.snapshot w; cfg = config; cut })

let record t r c =
  with_persist t (fun w p recov ->
      Persist.record p r;
      (* [Persist.maybe_checkpoint] counts appends since open, which a
         reopen-per-operation resets — drive the cadence from the log's
         true length instead *)
      let total = recov.Persist.replayed + 1 in
      let checkpointed =
        if total >= max 1 t.cfg.Store.snapshot_every then (
          match Persist.checkpoint p c with
          | Ok () -> true
          | Error e -> failwith ("checker journal: checkpoint failed: " ^ e))
        else false
      in
      let cut = Persist.checkpoint_clock p in
      ({ t with image = Io.Mem.snapshot w; cut }, checkpointed))

let checkpoint t c =
  with_persist t (fun w p _ ->
      match Persist.checkpoint p c with
      | Error e -> failwith ("checker journal: checkpoint failed: " ^ e)
      | Ok () ->
        let cut = Persist.checkpoint_clock p in
        { t with image = Io.Mem.snapshot w; cut })

let cut t = t.cut

let generations t =
  let w = Io.Mem.restore t.image in
  Snapshot.generations ~io:(Io.Mem.io w) ~dir ()

let crash t =
  let w = Io.Mem.restore t.image in
  Io.Mem.crash w;
  { t with image = Io.Mem.snapshot w }

let corrupt_newest_snapshot t =
  let w = Io.Mem.restore t.image in
  match List.rev (Snapshot.generations ~io:(Io.Mem.io w) ~dir ()) with
  | [] | [ _ ] -> None
  | newest :: _ ->
    if Io.Mem.corrupt_file w (Filename.concat dir (Snapshot.filename newest)) then
      Some { t with image = Io.Mem.snapshot w }
    else None

type recovery = {
  controller : char Controller.t;
  emitted : char Controller.message list;
  replayed : int;
  truncated_bytes : int;
}

let recover t =
  let w = Io.Mem.restore t.image in
  match
    Persist.opendir ~config:t.cfg ~io:(Io.Mem.io w) ~eq:Char.equal
      ~codec:Proto.char_codec dir
  with
  | Error e -> Error e
  | Ok (p, r) -> (
    let cut = Persist.checkpoint_clock p in
    Persist.close p;
    match r.Persist.controller with
    | None -> Error "recovery found no snapshot to rebuild from"
    | Some controller ->
      Ok
        ( { t with image = Io.Mem.snapshot w; cut },
          {
            controller;
            emitted = r.Persist.emitted;
            replayed = r.Persist.replayed;
            truncated_bytes = r.Persist.truncated_bytes;
          } ))

let fingerprint t = Io.Mem.image_fingerprint t.image
