(** Delta-debugging of violating schedules.

    The explorer's counterexamples are whole runs — every script step
    and every delivery from the initial state to the violating frontier.
    Most of those events are incidental.  {!minimize} reduces a
    violating schedule to a locally minimal subsequence that still
    violates the oracles, using Zeller–Hildebrandt [ddmin] with
    {!Explore.replay} as the test function: a candidate subsequence is
    replayed (events that are no longer enabled are skipped, remaining
    messages are drained) and kept iff its final frontier still fails.

    The result is 1-minimal with respect to that test — removing any
    single event makes the violation disappear — which is what turns a
    thousand-event interleaving into the handful of messages of the
    paper's Fig. 2 diagram. *)

val minimize :
  ?mutant:Explore.mutant -> Scenario.t -> Explore.event list -> Explore.event list
(** [minimize scenario schedule] assumes [schedule]'s replay violates
    (under the same [mutant], if any);
    if it does not, the schedule is returned unchanged.  The result is
    a subsequence of [schedule]. *)

val fails : ?mutant:Explore.mutant -> Scenario.t -> Explore.event list -> bool
(** The ddmin test function: does replaying the schedule (with drain)
    end in a violated frontier or a crash? *)
