(* crashtest: the recovery torture harness.

   Runs an in-process replica of the deployed topology — N client sites
   plus a passive relay, every one of them journaling its inputs through
   [Dce_store.Persist] — and tortures it.  Each cycle:

     1. the sites trade random edits and administrative actions through
        the relay (deliveries deliberately lag, so there is always
        traffic in flight when the axe falls);
     2. one process — a client or the relay itself — is kill-9'd: its
        controller and journal handle are dropped on the floor, no
        final checkpoint, nothing graceful;
     3. with some probability the victim's write-ahead-log tail is
        mangled the way a torn write would mangle it — truncated by a
        random count of bytes, or a byte near the end flipped;
     4. the victim restarts from its data directory alone and the
        reconnect handshake runs: a client catches up from the relay's
        session copy (the donor that, like dced, integrated and
        journaled every message before fanning it out, so it dominates
        anything the client ever consumed); after a relay restart every
        client reconnects, re-broadcasting whatever the rolled-back
        relay can no longer prove acknowledged;
     5. the network flushes to quiescence.

   The oracle, per cycle:

     - recovery NEVER fails, whatever was done to the tail;
     - with an intact log, the recovered state fingerprints identical
       to the pre-kill state — exact replay, not approximate;
     - after catch-up and the flush, the convergence oracles hold
       across every site including the relay ([Dce_sim.Convergence]).

   The fsync policy rotates per node AND per cycle (always / interval:8
   / never — so a single cycle runs all three side by side) and the
   snapshot cadence is kept short so every run crosses several store
   generations.  With --chaos, every fan-out enqueue runs through a
   seeded [Dce_netd.Faults] plan: duplicated deliveries exercise the
   receiver dedup, and drop/delay/swap decisions hold deliveries back
   until the end of the cycle (reordering, never losing — the paper
   assumes reliable broadcast).  Exit status 0 iff every cycle passes;
   on failure the data directories are kept and named for post-mortem,
   and the next green run on the same machine prunes them. *)

open Dce_core
module Tdoc = Dce_ot.Tdoc
module Persist = Dce_store.Persist
module Store = Dce_store.Store
module Wal = Dce_store.Wal
module Proto = Dce_wire.Proto
module Rng = Dce_sim.Rng
module Convergence = Dce_sim.Convergence
module Faults = Dce_netd.Faults

exception Torture_failure of string

let failf fmt = Printf.ksprintf (fun s -> raise (Torture_failure s)) fmt

(* Threading an immutable Rng through a torture loop obscures the
   torture; one ref, drawn from left to right. *)
let rand_int rng n =
  let v, r = Rng.int !rng n in
  rng := r;
  v

let rand_range rng lo hi =
  let v, r = Rng.in_range !rng lo hi in
  rng := r;
  v

let rand_bool rng p =
  let v, r = Rng.bool !rng p in
  rng := r;
  v

let rand_pick rng l =
  let v, r = Rng.pick !rng l in
  rng := r;
  v

let rand_weighted rng l =
  let v, r = Rng.weighted !rng l in
  rng := r;
  v

(* One journaled process: a client site or the relay. *)
type node = {
  id : int;
  name : string;
  dir : string;
  mutable ctrl : char Controller.t;
  mutable journal : char Persist.t;
  mailbox : char Controller.message Queue.t;
      (** undelivered fan-out; keeps filling while the node is down, as
          the relay's per-connection send queue would *)
  delayed : char Controller.message Queue.t;
      (** chaos-held deliveries: released into the mailbox at the end of
          the cycle, so faults reorder but never lose (§3.3) *)
}

type session = { clients : node array; relay : node; faults : Faults.t option }

(* Same passive-member site id dced uses. *)
let relay_site = 1_000_000

let all_nodes sess = Array.to_list sess.clients @ [ sess.relay ]

let fsync_policies = [| Wal.Always; Wal.Interval 8; Wal.Never |]

(* Rotate per node AND per cycle: within any one cycle the session mixes
   all three durability policies, and each node cycles through them
   across its own restarts. *)
let config_for ~cycle ~id =
  {
    Store.fsync = fsync_policies.((cycle + id) mod Array.length fsync_policies);
    snapshot_every = 16;
    keep_generations = 2;
  }

let open_journal ~cycle ~id dir =
  Persist.opendir ~config:(config_for ~cycle ~id) ~eq:Char.equal
    ~codec:Proto.char_codec dir

let checkpoint_maybe n =
  match Persist.maybe_checkpoint n.journal n.ctrl with
  | Ok _ -> ()
  | Error e -> failf "%s: checkpoint failed: %s" n.name e

(* Broadcast mirrors dced: the relay integrates and journals the message
   BEFORE any client can see it — which is what makes the relay a sound
   catch-up donor (it dominates everything any client ever consumed). *)
let rec broadcast sess ~from msgs =
  List.iter
    (fun m ->
       if from <> relay_site then begin
         let ctrl, emitted = Controller.receive sess.relay.ctrl m in
         sess.relay.ctrl <- ctrl;
         Persist.record sess.relay.journal (Persist.Received m);
         checkpoint_maybe sess.relay;
         if emitted <> [] then broadcast sess ~from:relay_site emitted
       end;
       Array.iter
         (fun c ->
            if c.id <> from then
              match sess.faults with
              | None -> Queue.add m c.mailbox
              | Some f -> (
                match Faults.decide f with
                | Faults.Pass -> Queue.add m c.mailbox
                | Faults.Dup ->
                  (* receivers deduplicate; the journal replays the dup too *)
                  Queue.add m c.mailbox;
                  Queue.add m c.mailbox
                | Faults.Drop | Faults.Delay _ | Faults.Swap ->
                  (* held back, not lost: released at the end of the cycle *)
                  Queue.add m c.delayed))
         sess.clients)
    msgs

(* Deliver one queued message: integrate, then journal — a message that
   makes [receive] raise must never poison the log (see Persist). *)
let deliver sess c m =
  let ctrl, emitted = Controller.receive c.ctrl m in
  c.ctrl <- ctrl;
  Persist.record c.journal (Persist.Received m);
  checkpoint_maybe c;
  broadcast sess ~from:c.id emitted

let pump_some sess ~down rng budget =
  let delivered = ref 0 in
  (try
     while !delivered < budget do
       let ready =
         Array.to_list sess.clients
         |> List.filter (fun c ->
                c.id <> down && not (Queue.is_empty c.mailbox))
       in
       if ready = [] then raise Exit;
       let c = rand_pick rng ready in
       deliver sess c (Queue.take c.mailbox);
       incr delivered
     done
   with Exit -> ());
  !delivered

let release_delayed sess =
  Array.iter
    (fun c -> Queue.transfer c.delayed c.mailbox)
    sess.clients

(* Full quiescence: pumping can emit fresh broadcasts (the admin's
   validations) which chaos may hold back again, so release and pump
   until both queues are empty everywhere. *)
let flush sess rng =
  let rec go () =
    release_delayed sess;
    ignore (pump_some sess ~down:(-1) rng max_int);
    if Array.exists (fun c -> not (Queue.is_empty c.delayed)) sess.clients then go ()
  in
  go ()

(* {2 Workload} *)

let letter rng = Char.chr (97 + rand_int rng 26)

let random_op rng doc =
  let n = Tdoc.visible_length doc in
  if n = 0 then Tdoc.ins_visible doc 0 (letter rng)
  else
    match rand_weighted rng [ (5, `Ins); (3, `Del); (2, `Up) ] with
    | `Ins -> Tdoc.ins_visible doc (rand_int rng (n + 1)) (letter rng)
    | `Del -> Tdoc.del_visible doc (rand_int rng n)
    | `Up ->
      Tdoc.up_visible doc (rand_int rng n)
        (Char.uppercase_ascii (letter rng))

let do_edit sess c rng =
  let op = random_op rng (Controller.document c.ctrl) in
  match Controller.generate c.ctrl op with
  | ctrl, Controller.Accepted m ->
    c.ctrl <- ctrl;
    (* journal before broadcast: the group must never hold a request
       its origin site could forget in a crash *)
    Persist.record c.journal (Persist.Generated op);
    checkpoint_maybe c;
    broadcast sess ~from:c.id [ m ]
  | ctrl, Controller.Denied _ -> c.ctrl <- ctrl

(* The torture administrator toggles per-user denials, same shape as the
   simulator's workload: restrictive actions are what make validation,
   retroactive undo and the interval check earn their keep. *)
let do_admin sess c rng users =
  let negatives =
    Controller.policy c.ctrl |> Policy.auths
    |> List.mapi (fun i a -> (i, a))
    |> List.filter (fun (_, a) -> Auth.is_restrictive a)
  in
  let op =
    if negatives = [] || rand_bool rng 0.6 then
      let u = rand_pick rng users in
      let right = rand_pick rng [ Right.Insert; Right.Delete; Right.Update ] in
      Admin_op.Add_auth (0, Auth.deny [ Subject.User u ] [ Docobj.Whole ] [ right ])
    else
      let i, _ = rand_pick rng negatives in
      Admin_op.Del_auth i
  in
  match Controller.admin_update c.ctrl op with
  | Ok (ctrl, m) ->
    c.ctrl <- ctrl;
    Persist.record c.journal (Persist.Admin_cmd op);
    checkpoint_maybe c;
    broadcast sess ~from:c.id [ m ]
  | Error _ -> ()

(* {2 Tail mangling} *)

type mangle = Truncated of int | Flipped of int

let pp_mangle ppf = function
  | None -> Format.fprintf ppf "log intact"
  | Some (Truncated n) -> Format.fprintf ppf "tail truncated by %d byte(s)" n
  | Some (Flipped pos) -> Format.fprintf ppf "byte flipped at offset %d" pos

let mangle_tail rng path =
  let size = (Unix.stat path).Unix.st_size in
  if size = 0 then None
  else if rand_bool rng 0.5 then begin
    let n = rand_range rng 1 (min 64 size) in
    let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
    Unix.ftruncate fd (size - n);
    Unix.close fd;
    Some (Truncated n)
  end
  else begin
    let pos = size - 1 - rand_int rng (min 64 size) in
    let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
    ignore (Unix.lseek fd pos Unix.SEEK_SET);
    let b = Bytes.create 1 in
    if Unix.read fd b 0 1 <> 1 then failf "mangle: short read on %s" path;
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x5a));
    ignore (Unix.lseek fd pos Unix.SEEK_SET);
    if Unix.write fd b 0 1 <> 1 then failf "mangle: short write on %s" path;
    Unix.close fd;
    Some (Flipped pos)
  end

(* {2 Kill, mangle, restart} *)

(* kill -9: no checkpoint, no sync beyond what the policy already did;
   returns what recovery must reproduce when the tail survives. *)
let kill n =
  let gen = Persist.generation n.journal in
  let pre_fp = Persist.fingerprint n.journal n.ctrl in
  Persist.close n.journal;
  (gen, pre_fp)

let restart ~cycle ~mangled ~pre_fp n =
  match open_journal ~cycle ~id:n.id n.dir with
  | Error e -> failf "cycle %d: recovery of %s failed: %s" cycle n.name e
  | Ok (j, r) ->
    let ctrl =
      match r.Persist.controller with
      | Some c -> c
      | None -> failf "cycle %d: %s recovered no state" cycle n.name
    in
    (match mangled with
     | None ->
       if Persist.fingerprint j ctrl <> pre_fp then
         failf
           "cycle %d: %s recovered from an intact log but does not \
            fingerprint-match its pre-kill state"
           cycle n.name
     | Some _ -> ());
    n.journal <- j;
    n.ctrl <- ctrl;
    r

(* The reconnect handshake, as p2pedit runs it against a dced snapshot:
   catch up from the relay's session copy, checkpoint (the catch-up
   inputs came from the donor, not the journal, so the log can no
   longer reproduce this state), re-broadcast what the relay cannot
   prove acknowledged. *)
let reconnect sess c =
  let caught, out = Controller.catch_up c.ctrl sess.relay.ctrl in
  c.ctrl <- caught;
  (match Persist.checkpoint c.journal caught with
   | Ok () -> ()
   | Error e -> failf "%s: post-catch-up checkpoint failed: %s" c.name e);
  broadcast sess ~from:c.id out

(* {2 Setup, oracle, teardown} *)

let make_node ~root ~policy ~text ~name id =
  let dir = Filename.concat root name in
  match open_journal ~cycle:0 ~id dir with
  | Error e -> failf "%s: cannot open store: %s" name e
  | Ok (j, r) ->
    (match r.Persist.controller with
     | Some _ -> failf "%s: data dir %s is not empty" name dir
     | None -> ());
    let ctrl =
      Controller.create ~eq:Char.equal ~site:id ~admin:0 ~policy
        (Tdoc.of_string text)
    in
    (match Persist.checkpoint j ctrl with
     | Ok () -> ()
     | Error e -> failf "%s: bootstrap checkpoint failed: %s" name e);
    { id; name; dir; ctrl; journal = j; mailbox = Queue.create ();
      delayed = Queue.create () }

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let pp_cell ppf (c : char Tdoc.cell) =
  Format.fprintf ppf "{%c h%d [%s]}" c.Tdoc.elt c.Tdoc.hidden
    (String.concat ";"
       (List.map
          (fun (w : char Tdoc.write) ->
             Printf.sprintf "%c@%d.%d r%d" w.Tdoc.value w.Tdoc.wtag.Dce_ot.Op.stamp
               w.Tdoc.wtag.Dce_ot.Op.site w.Tdoc.retracted)
          c.Tdoc.writes))

let dump_node n =
  Format.eprintf "%s (v%d, F=%d Q=%d tentative=%d): %a@." n.name
    (Controller.version n.ctrl)
    (Controller.pending_coop n.ctrl)
    (Controller.pending_admin n.ctrl)
    (List.length (Controller.tentative n.ctrl))
    (Format.pp_print_list ~pp_sep:(fun _ () -> ()) pp_cell)
    (Tdoc.model_list (Controller.document n.ctrl));
  let st = Controller.dump n.ctrl in
  List.iter
    (fun (r : Admin_op.request) ->
       Format.eprintf "  admin_queue: v%d by %d %a@." r.Admin_op.version
         r.Admin_op.admin Admin_op.pp r.Admin_op.op)
    st.Controller.st_admin_queue;
  List.iter
    (fun (q : char Dce_ot.Request.t) ->
       Format.eprintf "  coop_queue: q%d.%d pv%d@."
         q.Dce_ot.Request.id.Dce_ot.Request.site
         q.Dce_ot.Request.id.Dce_ot.Request.serial
         q.Dce_ot.Request.policy_version)
    st.Controller.st_coop_queue

let check_convergence ~cycle sess =
  let ctrls = List.map (fun n -> n.ctrl) (all_nodes sess) in
  match Convergence.explain ctrls with
  | None -> ()
  | Some why ->
    List.iter dump_node (all_nodes sess);
    failf "cycle %d: divergence after recovery: %s" cycle why

let torture ~cycles ~nsites ~events ~corrupt_prob ~seed ~chaos ~quiet root =
  let rng = ref (Rng.of_int seed) in
  let users = List.init nsites Fun.id in
  let policy =
    Policy.make ~users [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]
  in
  let sess =
    {
      clients =
        Array.init nsites (fun i ->
            make_node ~root ~policy ~text:"secure document"
              ~name:(Printf.sprintf "site-%d" i) i);
      relay = make_node ~root ~policy ~text:"secure document" ~name:"relay" relay_site;
      faults =
        Option.map (fun cfg -> Faults.create ~config:cfg ~seed ~label:"crashtest" ()) chaos;
    }
  in
  let say fmt =
    if quiet then Format.ifprintf Format.std_formatter fmt
    else Format.printf fmt
  in
  let mangled_cycles = ref 0 in
  let replayed_total = ref 0 in
  for cycle = 1 to cycles do
    (* phase 1: traffic, under-pumped so messages are in flight *)
    for _ = 1 to events do
      match rand_weighted rng [ (6, `Edit); (1, `Admin); (3, `Pump) ] with
      | `Edit -> do_edit sess (rand_pick rng (Array.to_list sess.clients)) rng
      | `Admin -> do_admin sess sess.clients.(0) rng users
      | `Pump -> ignore (pump_some sess ~down:(-1) rng 3)
    done;
    (* phases 2-4: kill -9, mangle, restart, reconnect *)
    let victim_relay = rand_int rng (nsites + 1) = nsites in
    let victim = if victim_relay then sess.relay else sess.clients.(rand_int rng nsites) in
    let gen, pre_fp = kill victim in
    let wal_file =
      Filename.concat victim.dir (Printf.sprintf "wal-%010d.log" gen)
    in
    let mangled =
      if rand_bool rng corrupt_prob then mangle_tail rng wal_file else None
    in
    if mangled <> None then incr mangled_cycles;
    let r = restart ~cycle ~mangled ~pre_fp victim in
    replayed_total := !replayed_total + r.Persist.replayed;
    if victim_relay then
      (* the relay may have rolled back past traffic it already fanned
         out: every client reconnects, and each one's catch-up
         re-broadcasts its own requests the relay no longer proves
         acked — exactly how the group heals a forgetful dced *)
      Array.iter (fun c -> reconnect sess c) sess.clients
    else begin
      broadcast sess ~from:victim.id r.Persist.emitted;
      reconnect sess victim
    end;
    say "cycle %3d/%d: killed %s (fsync %s), %a -> gen %d, %d replayed%s@."
      cycle cycles victim.name
      (Store.fsync_policy_to_string (config_for ~cycle ~id:victim.id).Store.fsync)
      pp_mangle mangled (Persist.generation victim.journal) r.Persist.replayed
      (if r.Persist.truncated_bytes > 0 then
         Printf.sprintf " (%d torn byte(s) dropped)" r.Persist.truncated_bytes
       else "");
    (* phase 5: flush and judge *)
    flush sess rng;
    check_convergence ~cycle sess
  done;
  (* final oracle: every journal still round-trips exactly *)
  List.iter
    (fun n ->
       let pre = Persist.fingerprint n.journal n.ctrl in
       Persist.close n.journal;
       match open_journal ~cycle:0 ~id:n.id n.dir with
       | Error e -> failf "final reopen of %s failed: %s" n.name e
       | Ok (j, r) -> (
         match r.Persist.controller with
         | Some c when Persist.fingerprint j c = pre -> Persist.close j
         | Some _ -> failf "final reopen of %s does not fingerprint-match" n.name
         | None -> failf "final reopen of %s came back empty" n.name))
    (all_nodes sess);
  Format.printf
    "crashtest: %d kill/restart cycle(s), %d with a mangled tail, %d record(s) \
     replayed; every recovery clean, every cycle convergent@."
    cycles !mangled_cycles !replayed_total;
  Format.printf "final doc %S (policy v%d)@."
    (Tdoc.visible_string (Controller.document sess.relay.ctrl))
    (Controller.version sess.relay.ctrl)

(* A failing run keeps its directories for post-mortem; the next green
   run on the same machine reclaims every one of them (anything under
   the temp dir matching our own naming scheme). *)
let prune_stale_runs () =
  let tmp = Filename.get_temp_dir_name () in
  match Sys.readdir tmp with
  | names ->
    Array.iter
      (fun n ->
         if String.length n > 10 && String.sub n 0 10 = "crashtest-" then
           try rm_rf (Filename.concat tmp n) with Unix.Unix_error _ | Sys_error _ -> ())
      names
  | exception Sys_error _ -> ()

let run cycles nsites events corrupt_prob seed chaos_arg dir keep quiet =
  if nsites < 2 then begin
    prerr_endline "crashtest: need at least 2 sites";
    exit 2
  end;
  let chaos =
    match chaos_arg with
    | None -> None
    | Some spec -> (
      match Faults.of_string spec with
      | Ok cfg -> Some cfg
      | Error e ->
        prerr_endline ("crashtest: --chaos: " ^ e);
        exit 2)
  in
  let root =
    match dir with
    | Some d -> d
    | None ->
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "crashtest-%d" (Unix.getpid ()))
  in
  match torture ~cycles ~nsites ~events ~corrupt_prob ~seed ~chaos ~quiet root with
  | () ->
    if not keep then begin
      rm_rf root;
      if dir = None then prune_stale_runs ()
    end
  | exception Torture_failure msg ->
    Printf.eprintf "crashtest: FAILED: %s\n" msg;
    Printf.eprintf "crashtest: data directories kept in %s\n" root;
    exit 1

open Cmdliner

let cycles =
  Arg.(value & opt int 50
       & info [ "cycles" ] ~docv:"N" ~doc:"Kill-9/restart cycles to run.")

let nsites =
  Arg.(value & opt int 3
       & info [ "sites" ] ~docv:"N"
           ~doc:"Client sites in the session (site 0 is the administrator); \
                 the relay is an additional kill target.")

let events =
  Arg.(value & opt int 40
       & info [ "events" ] ~docv:"N" ~doc:"Workload events per cycle before the kill.")

let corrupt_prob =
  Arg.(value & opt float 0.5
       & info [ "corrupt" ] ~docv:"P"
           ~doc:"Probability that a kill also mangles the victim's log tail.")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed.")

let chaos_arg =
  Arg.(value & opt (some string) None
       & info [ "chaos" ] ~docv:"SPEC"
           ~doc:"Run every fan-out enqueue through a seeded fault plan, e.g. \
                 $(b,dup=0.1,delay=0.2,reorder=0.1): duplicated deliveries \
                 exercise receiver dedup, drop/delay/swap decisions hold the \
                 delivery back until the end of the cycle (reordered, never \
                 lost).")

let dir =
  Arg.(value & opt (some string) None
       & info [ "dir" ] ~docv:"DIR"
           ~doc:"Root for the per-site data directories (default: a fresh \
                 directory under the system temp dir, removed on success).")

let keep =
  Arg.(value & flag
       & info [ "keep" ] ~doc:"Keep the data directories even on success.")

let quiet =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Only print the final summary.")

let cmd =
  Cmd.v
    (Cmd.info "crashtest"
       ~doc:"Torture the WAL + snapshot recovery path with kill-9/restart \
             cycles and torn log tails")
    Term.(const run $ cycles $ nsites $ events $ corrupt_prob $ seed $ chaos_arg
          $ dir $ keep $ quiet)

let () = exit (Cmd.eval cmd)
