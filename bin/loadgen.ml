(* loadgen: open-loop SLO load harness for the networked deployment.

   Spawns one relay process plus N editor processes (site 0 is the
   administrator, so the validation path is exercised), drives each
   editor open-loop at a configured op rate — the next op is due at
   start + k/rate regardless of how the system keeps up, so queueing
   shows in the latency numbers instead of silently throttling the
   offered load — then scrapes every process's admin endpoint and
   folds the expositions into one report:

     dune exec bin/loadgen.exe -- --editors 3 --rate 20 --duration 5

   Outputs BENCH_load.json (delivered throughput, end-to-end
   propagation percentiles, queue depths, overflow/reconnect counts)
   and leaves one JSONL trace per process in --trace-dir, ready for
   `trace.exe merge`.  Exits non-zero when nothing was delivered, no
   end-to-end sample was measured, or the delivery ratio falls under
   --min-delivery-ratio — the CI regression gate. *)

open Dce_core
module Obs = Dce_obs
module Netd = Dce_netd
module Proto = Dce_wire.Proto
module Tdoc = Dce_ot.Tdoc

let relay_site = 1_000_000

(* ----- a tiny blocking HTTP GET, for scraping the admin sockets ----- *)

let find_sub hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i =
    if i + m > n then None
    else if String.sub hay i m = needle then Some i
    else go (i + 1)
  in
  go 0

let http_get ~port ~path =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  try
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.;
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    let req =
      Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
        path
    in
    ignore (Unix.write_substring fd req 0 (String.length req));
    let buf = Bytes.create 65536 in
    let b = Buffer.create 4096 in
    let rec drain () =
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes b buf 0 n;
        drain ()
    in
    drain ();
    let raw = Buffer.contents b in
    match find_sub raw "\r\n\r\n" with
    | None -> Error "no header/body separator"
    | Some i ->
      let body = String.sub raw (i + 4) (String.length raw - i - 4) in
      if String.length raw >= 12 && String.sub raw 9 3 = "200" then Ok body
      else Error (String.trim (String.sub raw 0 (min 32 (String.length raw))))
  with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

(* ----- the relay process ----- *)

let relay_child ~relay ~admin ~metrics ~oc () =
  let stop = ref false in
  let handler = Sys.Signal_handle (fun _ -> stop := true) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler;
  let rec serve () =
    (* a SIGTERM mid-select surfaces as EINTR; re-enter so on_tick sees
       the stop flag and shuts down cleanly *)
    try
      Netd.Relay.run ~tick_ms:50
        ~on_tick:(fun r ->
          Obs.Metrics.set (Obs.Metrics.gauge metrics "netd.conns")
            (Netd.Relay.conn_count r);
          Obs.Metrics.set (Obs.Metrics.gauge metrics "netd.outbox_bytes")
            (Netd.Relay.outbox_bytes r);
          Netd.Admin.step admin;
          if !stop then Netd.Relay.shutdown r)
        relay
    with Unix.Unix_error (Unix.EINTR, _, _) ->
      if not (Netd.Relay.stopped relay) then serve ()
  in
  serve ();
  Netd.Admin.close admin;
  close_out_noerr oc;
  exit 0

(* ----- an editor process -----

   Status shared with the pre-fork admin callbacks: the parent created
   the admin socket (so it knows the port), the child updates this
   cell and steps the server. *)

type editor_cell = {
  mutable ec_joined : bool;
  mutable ec_doc_len : int;
  mutable ec_version : int;
  mutable ec_pending_coop : int;
  mutable ec_pending_admin : int;
  mutable ec_tentative : int;
  mutable ec_sent : int;
}

let fresh_cell () =
  {
    ec_joined = false;
    ec_doc_len = 0;
    ec_version = 0;
    ec_pending_coop = 0;
    ec_pending_admin = 0;
    ec_tentative = 0;
    ec_sent = 0;
  }

let editor_child ~cell ~metrics ~admin ~site ~relay_port ~rate ~duration
    ~trace_path () =
  let stop = ref false in
  let handler = Sys.Signal_handle (fun _ -> stop := true) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler;
  let oc = open_out trace_path in
  let sink = Obs.Trace.to_channel oc in
  let client =
    Netd.Client.create ~metrics ~trace:sink ~host:"127.0.0.1" ~port:relay_port
      ~site ()
  in
  let e2e = Obs.Metrics.histogram metrics "e2e.propagation_ns" in
  let sent_c = Obs.Metrics.counter metrics "load.sent" in
  let outbox_g = Obs.Metrics.gauge metrics "netd.outbox_bytes" in
  let ctrl = ref None in
  let send m =
    Netd.Client.send client
      (Proto.Char_proto.encode_message ~stamp:(Proto.stamp_now ~site ()) m)
  in
  (* open loop: op k is due at join + k/rate, whether or not the
     system kept up with op k-1 *)
  let total = int_of_float (rate *. duration) in
  let k = ref 0 in
  let start = ref None in
  let handle = function
    | Netd.Client.Connected -> ()
    | Netd.Client.Snapshot blob -> (
      match Proto.Char_proto.decode_state blob with
      | Error _ -> ()
      | Ok state -> (
        match Controller.load ~eq:Char.equal ~trace:sink ~metrics state with
        | Error _ -> ()
        | Ok donor ->
          let c =
            match !ctrl with
            | Some mine ->
              let mine, out = Controller.catch_up mine donor in
              List.iter send out;
              mine
            | None -> Controller.rejoin ~site donor
          in
          ctrl := Some c;
          if !start = None then start := Some (Obs.Clock.now_ms ());
          Netd.Client.set_stamp client (fun () ->
              match !ctrl with
              | Some c -> (Controller.clock c, Controller.version c)
              | None -> (Dce_ot.Vclock.empty, 0))))
    | Netd.Client.Message blob -> (
      match Proto.Char_proto.decode_message_stamped blob with
      | Error _ -> ()
      | Ok (stamp, m) -> (
        match !ctrl with
        | None -> ()
        | Some c -> (
          match Controller.receive c m with
          | c, emitted ->
            ctrl := Some c;
            (match stamp with
             | Some s ->
               Obs.Metrics.observe e2e (Obs.Clock.now_ns () - s.Proto.s_ns)
             | None -> ());
            List.iter send emitted
          | exception _ -> ())))
    | Netd.Client.Disconnected _ | Netd.Client.Reconnecting _ -> ()
    | Netd.Client.Gave_up _ -> stop := true
  in
  while not !stop do
    let due_ms =
      match !start with
      | Some t0 when !k < total -> Some (t0 +. (float_of_int !k *. 1000. /. rate))
      | _ -> None
    in
    let timeout_ms =
      match due_ms with
      | Some d -> max 0 (min 20 (int_of_float (d -. Obs.Clock.now_ms ())))
      | None -> 50
    in
    let events =
      try Netd.Client.step ~timeout_ms client
      with Unix.Unix_error (Unix.EINTR, _, _) -> []
    in
    List.iter handle events;
    Netd.Admin.step admin;
    Obs.Metrics.set outbox_g (Netd.Client.outbox_bytes client);
    (match (due_ms, !ctrl) with
     | Some d, Some c
       when Obs.Clock.now_ms () >= d && Netd.Client.connected client -> (
       incr k;
       let doc = Controller.document c in
       let len = Tdoc.visible_length doc in
       let pos = if len = 0 then 0 else !k mod len in
       let ch = Char.chr (Char.code 'a' + (!k mod 26)) in
       match Controller.generate c (Tdoc.ins_visible doc pos ch) with
       | c, Controller.Accepted m ->
         ctrl := Some c;
         Obs.Metrics.incr sent_c;
         cell.ec_sent <- cell.ec_sent + 1;
         send m
       | _, Controller.Denied _ -> ())
     | _ -> ());
    cell.ec_joined <- Option.is_some !ctrl;
    match !ctrl with
    | Some c ->
      cell.ec_doc_len <- Tdoc.visible_length (Controller.document c);
      cell.ec_version <- Controller.version c;
      cell.ec_pending_coop <- Controller.pending_coop c;
      cell.ec_pending_admin <- Controller.pending_admin c;
      cell.ec_tentative <- List.length (Controller.tentative c)
    | None -> ()
  done;
  Netd.Client.close client;
  Netd.Admin.close admin;
  close_out_noerr oc;
  exit 0

(* ----- the harness ----- *)

let json_of_summary (s : Obs.Metrics.summary) =
  Obs.Json.Obj
    [
      ("count", Obs.Json.Int s.Obs.Metrics.count);
      ("sum", Obs.Json.Int s.Obs.Metrics.sum);
      ("min", Obs.Json.Int s.Obs.Metrics.min);
      ("max", Obs.Json.Int s.Obs.Metrics.max);
      ("median", Obs.Json.Float s.Obs.Metrics.p50);
      ("p95", Obs.Json.Float s.Obs.Metrics.p95);
      ("p99", Obs.Json.Float s.Obs.Metrics.p99);
    ]

let reap pid =
  let rec poll tries =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if tries = 0 then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid)
      end
      else begin
        Unix.sleepf 0.1;
        poll (tries - 1)
      end
    | _ | (exception Unix.Unix_error (Unix.ECHILD, _, _)) -> ()
  in
  poll 50

let kill_all pids =
  List.iter
    (fun pid -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
    pids;
  List.iter reap pids

let run editors rate duration drain_ms port text trace_dir out min_ratio =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if editors < 2 then begin
    prerr_endline "loadgen: need at least 2 editors";
    exit 2
  end;
  (try Unix.mkdir trace_dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  (* relay created pre-fork so its ports are known here; the child
     inherits the bound sockets and runs the loop *)
  let relay_metrics = Obs.Metrics.create () in
  let relay_oc = open_out (Filename.concat trace_dir "relay.jsonl") in
  let relay_sink = Obs.Trace.to_channel relay_oc in
  let all_users = List.init editors Fun.id in
  let policy =
    Policy.make ~users:all_users
      [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]
  in
  let controller =
    Controller.create ~eq:Char.equal ~site:relay_site ~admin:0 ~policy
      ~trace:relay_sink ~metrics:relay_metrics (Tdoc.of_string text)
  in
  let relay =
    Netd.Relay.create ~metrics:relay_metrics ~trace:relay_sink
      ~codec:Proto.char_codec ~controller ~port ()
  in
  let relay_port = Netd.Relay.port relay in
  let relay_admin =
    Netd.Admin.create ~metrics:relay_metrics
      ~healthz:(fun () ->
        Obs.Json.Obj
          [
            ("status", Obs.Json.String "ok");
            ("role", Obs.Json.String "relay");
            ("port", Obs.Json.Int relay_port);
          ])
      ~sessions:(fun () ->
        let c = Netd.Relay.controller relay in
        Obs.Json.Obj
          [
            ( "sites",
              Obs.Json.List
                (List.map
                   (fun s -> Obs.Json.Int s)
                   (Netd.Relay.connected_sites relay)) );
            ("doc_len", Obs.Json.Int (Tdoc.visible_length (Controller.document c)));
            ("policy_version", Obs.Json.Int (Controller.version c));
          ])
      ~port:0 ()
  in
  let relay_admin_port = Netd.Admin.port relay_admin in
  let relay_pid = Unix.fork () in
  if relay_pid = 0 then
    relay_child ~relay ~admin:relay_admin ~metrics:relay_metrics ~oc:relay_oc ();
  (* editors: sites 0..N-1; site 0 is the administrator, so its copies
     validate the others' tentative requests *)
  let eds =
    List.map
      (fun site ->
        let metrics = Obs.Metrics.create () in
        let cell = fresh_cell () in
        let admin =
          Netd.Admin.create ~metrics
            ~healthz:(fun () ->
              Obs.Json.Obj
                [
                  ("status", Obs.Json.String "ok");
                  ("role", Obs.Json.String "editor");
                  ("site", Obs.Json.Int site);
                  ("joined", Obs.Json.Bool cell.ec_joined);
                ])
            ~sessions:(fun () ->
              Obs.Json.Obj
                [
                  ("site", Obs.Json.Int site);
                  ("joined", Obs.Json.Bool cell.ec_joined);
                  ("doc_len", Obs.Json.Int cell.ec_doc_len);
                  ("policy_version", Obs.Json.Int cell.ec_version);
                  ("pending_coop", Obs.Json.Int cell.ec_pending_coop);
                  ("pending_admin", Obs.Json.Int cell.ec_pending_admin);
                  ("tentative", Obs.Json.Int cell.ec_tentative);
                  ("sent", Obs.Json.Int cell.ec_sent);
                ])
            ~port:0 ()
        in
        let admin_port = Netd.Admin.port admin in
        let trace_path =
          Filename.concat trace_dir (Printf.sprintf "site%d.jsonl" site)
        in
        let pid = Unix.fork () in
        if pid = 0 then
          editor_child ~cell ~metrics ~admin ~site ~relay_port ~rate ~duration
            ~trace_path ();
        (site, pid, admin_port))
      all_users
  in
  let pids = relay_pid :: List.map (fun (_, p, _) -> p) eds in
  Printf.printf
    "loadgen: relay on %d (admin %d), %d editor(s), %g op/s each for %gs\n%!"
    relay_port relay_admin_port editors rate duration;
  (* phase 1: every editor joined *)
  let joined (_, _, aport) =
    match http_get ~port:aport ~path:"/healthz" with
    | Error _ -> false
    | Ok body -> (
      match Obs.Json.of_string (String.trim body) with
      | Error _ -> false
      | Ok j -> (
        match Obs.Json.member "joined" j with
        | Some (Obs.Json.Bool b) -> b
        | _ -> false))
  in
  let join_deadline = Obs.Clock.now_ms () +. 30_000. in
  let rec wait_join () =
    if List.for_all joined eds then true
    else if Obs.Clock.now_ms () > join_deadline then false
    else begin
      Unix.sleepf 0.1;
      wait_join ()
    end
  in
  if not (wait_join ()) then begin
    prerr_endline "loadgen: editors failed to join within 30s";
    kill_all pids;
    exit 2
  end;
  Printf.printf "loadgen: all editors joined; driving load...\n%!";
  (* phase 2: the measurement window, plus drain time for stragglers *)
  Unix.sleepf (duration +. (float_of_int drain_ms /. 1000.));
  (* phase 3: scrape every live admin endpoint and merge *)
  let merged = Obs.Metrics.create () in
  let scrape_failures = ref [] in
  List.iter
    (fun (name, aport) ->
      match http_get ~port:aport ~path:"/metrics" with
      | Ok body -> Obs.Export.merge_into merged (Obs.Export.parse_exposition body)
      | Error e -> scrape_failures := (name ^ ": " ^ e) :: !scrape_failures)
    (("relay", relay_admin_port)
     :: List.map (fun (s, _, p) -> (Printf.sprintf "site%d" s, p)) eds);
  kill_all pids;
  (* phase 4: the report *)
  let counters = Obs.Metrics.counters merged in
  let gauges = Obs.Metrics.gauges merged in
  let hists = Obs.Metrics.histograms merged in
  let counter name = try List.assoc name counters with Not_found -> 0 in
  let sent = counter "load_sent" in
  let delivered = counter "controller_delivered" in
  let e2e =
    try Some (List.assoc "e2e_propagation_ns" hists) with Not_found -> None
  in
  let e2e_count = match e2e with Some s -> s.Obs.Metrics.count | None -> 0 in
  let e2e_p f = match e2e with Some s when e2e_count > 0 -> f s | _ -> 0. in
  let offered = float_of_int editors *. rate *. duration in
  (* every sent op should be delivered at the other N-1 editors plus
     the relay's own controller: N deliveries per op *)
  let expected = sent * editors in
  let ratio =
    if expected = 0 then 0. else float_of_int delivered /. float_of_int expected
  in
  let throughput = float_of_int delivered /. duration in
  let report =
    Obs.Json.Obj
      [
        ("section", Obs.Json.String "load");
        ("editors", Obs.Json.Int editors);
        ("rate_per_editor", Obs.Json.Float rate);
        ("duration_s", Obs.Json.Float duration);
        ("offered_ops", Obs.Json.Float offered);
        ("sent_ops", Obs.Json.Int sent);
        ("delivered", Obs.Json.Int delivered);
        ("delivery_ratio", Obs.Json.Float ratio);
        ("throughput_per_s", Obs.Json.Float throughput);
        ("e2e_samples", Obs.Json.Int e2e_count);
        ("e2e_p50_ns", Obs.Json.Float (e2e_p (fun s -> s.Obs.Metrics.p50)));
        ("e2e_p95_ns", Obs.Json.Float (e2e_p (fun s -> s.Obs.Metrics.p95)));
        ("e2e_p99_ns", Obs.Json.Float (e2e_p (fun s -> s.Obs.Metrics.p99)));
        ( "counters",
          Obs.Json.Obj (List.map (fun (n, v) -> (n, Obs.Json.Int v)) counters) );
        ( "gauges",
          Obs.Json.Obj (List.map (fun (n, v) -> (n, Obs.Json.Int v)) gauges) );
        ( "histograms",
          Obs.Json.Obj (List.map (fun (n, s) -> (n, json_of_summary s)) hists) );
      ]
  in
  let oc = open_out out in
  output_string oc (Obs.Json.to_string report);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "loadgen: sent %d, delivered %d (%.0f%% of expected), %.1f deliveries/s, \
     e2e p95 %.3f ms (%d sample(s))\n\
     report written to %s; traces in %s/\n%!"
    sent delivered (ratio *. 100.) throughput
    (e2e_p (fun s -> s.Obs.Metrics.p95) /. 1e6)
    e2e_count out trace_dir;
  let failures =
    List.concat
      [
        List.map (fun f -> "scrape failed: " ^ f) !scrape_failures;
        (if delivered = 0 then [ "nothing was delivered" ] else []);
        (if e2e_count = 0 then [ "no end-to-end latency samples" ] else []);
        (if ratio < min_ratio then
           [
             Printf.sprintf "delivery ratio %.2f under the gate %.2f" ratio
               min_ratio;
           ]
         else []);
      ]
  in
  List.iter (fun f -> Printf.eprintf "loadgen: FAIL: %s\n%!" f) failures;
  if failures = [] then 0 else 1

open Cmdliner

let editors =
  Arg.(value & opt int 3
       & info [ "editors" ] ~docv:"N" ~doc:"Editor processes (>= 2); site 0 is \
                                            the administrator.")

let rate =
  Arg.(value & opt float 20.
       & info [ "rate" ] ~docv:"OPS" ~doc:"Offered load per editor, ops/second \
                                           (open loop).")

let duration =
  Arg.(value & opt float 5.
       & info [ "duration" ] ~docv:"SECONDS" ~doc:"Length of the generation window.")

let drain_ms =
  Arg.(value & opt int 2000
       & info [ "drain-ms" ] ~docv:"MS"
           ~doc:"Extra settle time before scraping, for in-flight messages.")

let port =
  Arg.(value & opt int 0
       & info [ "port" ] ~docv:"PORT" ~doc:"Relay TCP port (0 = ephemeral).")

let text =
  Arg.(value & opt string "abc" & info [ "text" ] ~docv:"TEXT" ~doc:"Initial document.")

let trace_dir =
  Arg.(value & opt string "loadgen-traces"
       & info [ "trace-dir" ] ~docv:"DIR"
           ~doc:"Per-process JSONL traces land here (one per site plus the \
                 relay), ready for `trace.exe merge`.")

let out =
  Arg.(value & opt string "BENCH_load.json"
       & info [ "out" ] ~docv:"FILE" ~doc:"Report file.")

let min_ratio =
  Arg.(value & opt float 0.
       & info [ "min-delivery-ratio" ] ~docv:"R"
           ~doc:"Fail (exit 1) when delivered / (sent * editors) falls under \
                 $(docv) — the CI throughput-regression gate.")

let cmd =
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Open-loop SLO load harness: relay + N editors, scraped live")
    Term.(const run $ editors $ rate $ duration $ drain_ms $ port $ text
          $ trace_dir $ out $ min_ratio)

let () = exit (Cmd.eval' cmd)
