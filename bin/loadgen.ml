(* loadgen: open-loop SLO load harness for the networked deployment.

   Spawns one hub process plus N editor processes, drives each editor
   open-loop at a configured op rate — the next op is due at
   start + k/rate regardless of how the system keeps up, so queueing
   shows in the latency numbers instead of silently throttling the
   offered load — then scrapes every process's admin endpoint and
   folds the expositions into one report:

     dune exec bin/loadgen.exe -- --editors 3 --rate 20 --duration 5

   With --docs K the hub hosts K independent documents (load0..loadK-1)
   and editor i attaches to doc load(i mod K): each document is its own
   session with its own policy (users = the sites sharing the doc,
   admin = the lowest of them, so the validation path is exercised in
   every shard) and the report breaks delivered throughput down per
   document on top of the aggregate.

   Chaos mode (--chaos SPEC --seed N) runs every editor's outgoing
   frames through a seeded [Dce_netd.Faults] plan (drop, duplicate,
   delay, reorder), and --partition-ms cuts the odd-site editors off
   one-sidedly for a window in the middle of the run, then heals by
   forcing a reconnect: the rejoin snapshot plus catch-up re-broadcast
   must recover everything the partition swallowed, which the delivery
   ratio gate verifies.  The whole run is reproducible from --seed.

   Outputs BENCH_load.json (delivered throughput, end-to-end
   propagation percentiles, queue depths, overflow/reconnect counts)
   and leaves one JSONL trace per process in --trace-dir, ready for
   `trace.exe merge`.  Exits non-zero when nothing was delivered, no
   end-to-end sample was measured, or the delivery ratio falls under
   --min-delivery-ratio — the CI regression gate. *)

open Dce_core
module Obs = Dce_obs
module Netd = Dce_netd
module Hub = Dce_hub.Hub
module Proto = Dce_wire.Proto
module Tdoc = Dce_ot.Tdoc

let relay_site = 1_000_000

(* ----- a tiny blocking HTTP GET, for scraping the admin sockets ----- *)

let find_sub hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i =
    if i + m > n then None
    else if String.sub hay i m = needle then Some i
    else go (i + 1)
  in
  go 0

let http_get ~port ~path =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  try
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.;
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    let req =
      Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
        path
    in
    ignore (Unix.write_substring fd req 0 (String.length req));
    let buf = Bytes.create 65536 in
    let b = Buffer.create 4096 in
    let rec drain () =
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes b buf 0 n;
        drain ()
    in
    drain ();
    let raw = Buffer.contents b in
    match find_sub raw "\r\n\r\n" with
    | None -> Error "no header/body separator"
    | Some i ->
      let body = String.sub raw (i + 4) (String.length raw - i - 4) in
      if String.length raw >= 12 && String.sub raw 9 3 = "200" then Ok body
      else Error (String.trim (String.sub raw 0 (min 32 (String.length raw))))
  with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

(* ----- the hub process ----- *)

let relay_child ~hub ~admin ~metrics ~oc () =
  let stop = ref false in
  let handler = Sys.Signal_handle (fun _ -> stop := true) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler;
  let rec serve () =
    (* a SIGTERM mid-poll surfaces as EINTR; re-enter so on_tick sees
       the stop flag and shuts down cleanly *)
    try
      Hub.run ~tick_ms:50
        ~on_tick:(fun h ->
          Obs.Metrics.set (Obs.Metrics.gauge metrics "netd.conns")
            (Hub.conn_count h);
          Obs.Metrics.set (Obs.Metrics.gauge metrics "netd.outbox_bytes")
            (Hub.outbox_bytes h);
          Netd.Admin.step admin;
          if !stop then Hub.shutdown h)
        hub
    with Unix.Unix_error (Unix.EINTR, _, _) ->
      if not (Hub.stopped hub) then serve ()
  in
  serve ();
  Netd.Admin.close admin;
  close_out_noerr oc;
  exit 0

(* ----- an editor process -----

   Status shared with the pre-fork admin callbacks: the parent created
   the admin socket (so it knows the port), the child updates this
   cell and steps the server. *)

type editor_cell = {
  mutable ec_joined : bool;
  mutable ec_doc_len : int;
  mutable ec_version : int;
  mutable ec_pending_coop : int;
  mutable ec_pending_admin : int;
  mutable ec_tentative : int;
  mutable ec_sent : int;
}

let fresh_cell () =
  {
    ec_joined = false;
    ec_doc_len = 0;
    ec_version = 0;
    ec_pending_coop = 0;
    ec_pending_admin = 0;
    ec_tentative = 0;
    ec_sent = 0;
  }

let editor_child ~cell ~metrics ~admin ~site ~doc ~relay_port ~rate ~duration
    ~seed ~chaos ~partition ~trace_path () =
  let stop = ref false in
  let handler = Sys.Signal_handle (fun _ -> stop := true) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler;
  let oc = open_out trace_path in
  let sink = Obs.Trace.to_channel oc in
  let faults =
    (* a partition window needs a plan to flip even without --chaos *)
    match (chaos, partition) with
    | None, None -> None
    | cfg, _ ->
      Some
        (Netd.Faults.create
           ?config:cfg
           ~seed ~label:(Printf.sprintf "site-%d" site) ())
  in
  let client =
    Netd.Client.create ~metrics ~trace:sink ~seed ~doc ?faults ~host:"127.0.0.1"
      ~port:relay_port ~site ()
  in
  let e2e = Obs.Metrics.histogram metrics "e2e.propagation_ns" in
  (* doc-labeled, so the harness can break the merged totals down per
     shard after scraping *)
  let sent_c =
    Obs.Metrics.counter metrics
      (Obs.Metrics.with_label "load.sent" ~key:"doc" ~value:doc)
  in
  let delivered_c =
    Obs.Metrics.counter metrics
      (Obs.Metrics.with_label "load.delivered" ~key:"doc" ~value:doc)
  in
  let outbox_g = Obs.Metrics.gauge metrics "netd.outbox_bytes" in
  let ctrl = ref None in
  let send m =
    Netd.Client.send client
      (Proto.Char_proto.encode_message ~stamp:(Proto.stamp_now ~site ()) m)
  in
  (* open loop: op k is due at join + k/rate, whether or not the
     system kept up with op k-1 *)
  let total = int_of_float (rate *. duration) in
  let k = ref 0 in
  let start = ref None in
  let handle = function
    | Netd.Client.Connected -> ()
    | Netd.Client.Snapshot blob -> (
      match Proto.Char_proto.decode_state blob with
      | Error _ -> ()
      | Ok state -> (
        match Controller.load ~eq:Char.equal ~trace:sink ~metrics state with
        | Error _ -> ()
        | Ok donor ->
          let c =
            match !ctrl with
            | Some mine ->
              let mine, out = Controller.catch_up mine donor in
              List.iter send out;
              mine
            | None -> Controller.rejoin ~site donor
          in
          ctrl := Some c;
          if !start = None then start := Some (Obs.Clock.now_ms ());
          Netd.Client.set_stamp client (fun () ->
              match !ctrl with
              | Some c -> (Controller.clock c, Controller.version c)
              | None -> (Dce_ot.Vclock.empty, 0))))
    | Netd.Client.Message blob -> (
      match Proto.Char_proto.decode_message_stamped blob with
      | Error _ -> ()
      | Ok (stamp, m) -> (
        match !ctrl with
        | None -> ()
        | Some c -> (
          match Controller.receive c m with
          | c, emitted ->
            ctrl := Some c;
            Obs.Metrics.incr delivered_c;
            (match stamp with
             | Some s ->
               Obs.Metrics.observe e2e (Obs.Clock.now_ns () - s.Proto.s_ns)
             | None -> ());
            List.iter send emitted
          | exception _ -> ())))
    | Netd.Client.Beacon blob -> (
      (* the hub's aggregate stability gossip: absorbing it is what lets
         this editor compact below, keeping |H| flat for the whole run *)
      match Proto.decode_frontier blob with
      | Error _ -> ()
      | Ok entries -> (
        match !ctrl with
        | None -> ()
        | Some c ->
          ctrl :=
            Some
              (List.fold_left
                 (fun c (b : Proto.beacon) ->
                   Controller.receive_beacon c ~peer:b.Proto.b_site
                     ~clock:b.Proto.b_clock ~version:b.Proto.b_version)
                 c entries)))
    | Netd.Client.Delta _ ->
      (* editors here never present a resume point, so no delta arrives;
         tolerate one anyway (the snapshot fallback heals on reconnect) *)
      ()
    | Netd.Client.Disconnected _ | Netd.Client.Reconnecting _ -> ()
    | Netd.Client.Gave_up _ -> stop := true
  in
  let last_compact = ref 0. in
  (* one-sided partition: outgoing frames silently dropped for the
     window, then heal by severing the link — the rejoin snapshot and
     catch-up re-broadcast recover what the partition swallowed *)
  let pstate = ref `Before in
  let partition_step () =
    match (partition, faults, !start) with
    | Some (off_ms, dur_ms), Some f, Some t0 -> (
      let now = Obs.Clock.now_ms () in
      match !pstate with
      | `Before when now >= t0 +. off_ms ->
        Netd.Faults.set_partitioned f true;
        pstate := `During
      | `During when now >= t0 +. off_ms +. dur_ms ->
        Netd.Faults.set_partitioned f false;
        Netd.Client.drop_link ~reason:"partition healed" client;
        pstate := `Healed
      | _ -> ())
    | _ -> ()
  in
  while not !stop do
    partition_step ();
    let due_ms =
      match !start with
      | Some t0 when !k < total -> Some (t0 +. (float_of_int !k *. 1000. /. rate))
      | _ -> None
    in
    let timeout_ms =
      match due_ms with
      | Some d -> max 0 (min 20 (int_of_float (d -. Obs.Clock.now_ms ())))
      | None -> 50
    in
    let events =
      try Netd.Client.step ~timeout_ms client
      with Unix.Unix_error (Unix.EINTR, _, _) -> []
    in
    List.iter handle events;
    Netd.Admin.step admin;
    Obs.Metrics.set outbox_g (Netd.Client.outbox_bytes client);
    (match (due_ms, !ctrl) with
     | Some d, Some c
       when Obs.Clock.now_ms () >= d && Netd.Client.connected client -> (
       incr k;
       let doc = Controller.document c in
       let len = Tdoc.visible_length doc in
       let pos = if len = 0 then 0 else !k mod len in
       let ch = Char.chr (Char.code 'a' + (!k mod 26)) in
       match Controller.generate c (Tdoc.ins_visible doc pos ch) with
       | c, Controller.Accepted m ->
         ctrl := Some c;
         Obs.Metrics.incr sent_c;
         cell.ec_sent <- cell.ec_sent + 1;
         send m
       | _, Controller.Denied _ -> ())
     | _ -> ());
    (let now = Obs.Clock.now_ms () in
     if now -. !last_compact >= 2_000. then begin
       last_compact := now;
       match !ctrl with
       | Some c -> ctrl := Some (Controller.compact c)
       | None -> ()
     end);
    cell.ec_joined <- Option.is_some !ctrl;
    match !ctrl with
    | Some c ->
      cell.ec_doc_len <- Tdoc.visible_length (Controller.document c);
      cell.ec_version <- Controller.version c;
      cell.ec_pending_coop <- Controller.pending_coop c;
      cell.ec_pending_admin <- Controller.pending_admin c;
      cell.ec_tentative <- List.length (Controller.tentative c)
    | None -> ()
  done;
  Netd.Client.close client;
  Netd.Admin.close admin;
  close_out_noerr oc;
  exit 0

(* ----- the harness ----- *)

let json_of_summary (s : Obs.Metrics.summary) =
  Obs.Json.Obj
    [
      ("count", Obs.Json.Int s.Obs.Metrics.count);
      ("sum", Obs.Json.Int s.Obs.Metrics.sum);
      ("min", Obs.Json.Int s.Obs.Metrics.min);
      ("max", Obs.Json.Int s.Obs.Metrics.max);
      ("median", Obs.Json.Float s.Obs.Metrics.p50);
      ("p95", Obs.Json.Float s.Obs.Metrics.p95);
      ("p99", Obs.Json.Float s.Obs.Metrics.p99);
    ]

let reap pid =
  let rec poll tries =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if tries = 0 then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid)
      end
      else begin
        Unix.sleepf 0.1;
        poll (tries - 1)
      end
    | _ | (exception Unix.Unix_error (Unix.ECHILD, _, _)) -> ()
  in
  poll 50

let kill_all pids =
  List.iter
    (fun pid -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
    pids;
  List.iter reap pids

let run editors rate duration drain_ms port text trace_dir out min_ratio docs_k
    seed chaos_arg partition_ms =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let chaos =
    match chaos_arg with
    | None -> None
    | Some spec -> (
      match Netd.Faults.of_string spec with
      | Ok cfg -> Some cfg
      | Error e ->
        prerr_endline ("loadgen: --chaos: " ^ e);
        exit 2)
  in
  if editors < 2 then begin
    prerr_endline "loadgen: need at least 2 editors";
    exit 2
  end;
  if docs_k < 1 then begin
    prerr_endline "loadgen: --docs must be >= 1";
    exit 2
  end;
  (try Unix.mkdir trace_dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  (* document sharding: editor i works on doc load(i mod K); every doc
     is an independent session whose users are exactly the sites that
     share it, the lowest of them the admin *)
  let ndocs = max 1 (min docs_k editors) in
  let doc_name d = Printf.sprintf "load%d" d in
  let doc_of_site i = doc_name (i mod ndocs) in
  let all_users = List.init editors Fun.id in
  let doc_sites d = List.filter (fun i -> i mod ndocs = d) all_users in
  (* hub created pre-fork so its ports are known here; the child
     inherits the bound sockets and runs the loop *)
  let relay_metrics = Obs.Metrics.create () in
  let relay_oc = open_out (Filename.concat trace_dir "relay.jsonl") in
  let relay_sink = Obs.Trace.to_channel relay_oc in
  let factory doc =
    let d =
      try Scanf.sscanf doc "load%d" Fun.id
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> -1
    in
    match doc_sites d with
    | [] -> Error (Printf.sprintf "unknown doc %S" doc)
    | (admin :: _) as sites ->
      let policy =
        Policy.make ~users:sites
          [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]
      in
      Ok
        ( Controller.create ~eq:Char.equal ~site:relay_site ~admin ~policy
            ~trace:relay_sink ~metrics:relay_metrics (Tdoc.of_string text),
          None )
  in
  let hub =
    Hub.create
      ~config:{ Hub.default_config with Hub.default_doc = doc_name 0 }
      ~metrics:relay_metrics ~trace:relay_sink ~codec:Proto.char_codec ~factory
      ~docs:(List.init ndocs doc_name) ~port ()
  in
  let relay_port = Hub.port hub in
  let relay_admin =
    Netd.Admin.create ~metrics:relay_metrics
      ~healthz:(fun () ->
        match Hub.healthz hub () with
        | Obs.Json.Obj fields ->
          Obs.Json.Obj (fields @ [ ("port", Obs.Json.Int relay_port) ])
        | j -> j)
      ~sessions:(fun () ->
        Obs.Json.Obj
          [
            ( "docs",
              Obs.Json.List
                (List.map
                   (fun doc ->
                     let c = Hub.controller ~doc hub in
                     Obs.Json.Obj
                       [
                         ("doc", Obs.Json.String doc);
                         ( "sites",
                           Obs.Json.List
                             (List.map
                                (fun s -> Obs.Json.Int s)
                                (Hub.connected_sites ~doc hub)) );
                         ( "doc_len",
                           Obs.Json.Int
                             (Tdoc.visible_length (Controller.document c)) );
                         ("policy_version", Obs.Json.Int (Controller.version c));
                         ("window_len", Obs.Json.Int (Controller.window_len c));
                         ( "compacted_upto",
                           Obs.Json.Int
                             (Dce_ot.Vclock.sum (Controller.compacted_upto c)) );
                         ("stable_lag", Obs.Json.Int (Controller.stable_lag c));
                       ])
                   (Hub.docs hub)) );
          ])
      ~port:0 ()
  in
  let relay_admin_port = Netd.Admin.port relay_admin in
  let relay_pid = Unix.fork () in
  if relay_pid = 0 then
    relay_child ~hub ~admin:relay_admin ~metrics:relay_metrics ~oc:relay_oc ();
  (* editors: sites 0..N-1; each doc's lowest site is its administrator,
     so its copies validate the others' tentative requests *)
  let eds =
    List.map
      (fun site ->
        let metrics = Obs.Metrics.create () in
        let cell = fresh_cell () in
        let doc = doc_of_site site in
        let admin =
          Netd.Admin.create ~metrics
            ~healthz:(fun () ->
              Obs.Json.Obj
                [
                  ("status", Obs.Json.String "ok");
                  ("role", Obs.Json.String "editor");
                  ("site", Obs.Json.Int site);
                  ("doc", Obs.Json.String doc);
                  ("joined", Obs.Json.Bool cell.ec_joined);
                ])
            ~sessions:(fun () ->
              Obs.Json.Obj
                [
                  ("site", Obs.Json.Int site);
                  ("doc", Obs.Json.String doc);
                  ("joined", Obs.Json.Bool cell.ec_joined);
                  ("doc_len", Obs.Json.Int cell.ec_doc_len);
                  ("policy_version", Obs.Json.Int cell.ec_version);
                  ("pending_coop", Obs.Json.Int cell.ec_pending_coop);
                  ("pending_admin", Obs.Json.Int cell.ec_pending_admin);
                  ("tentative", Obs.Json.Int cell.ec_tentative);
                  ("sent", Obs.Json.Int cell.ec_sent);
                ])
            ~port:0 ()
        in
        let admin_port = Netd.Admin.port admin in
        let trace_path =
          Filename.concat trace_dir (Printf.sprintf "site%d.jsonl" site)
        in
        let partition =
          (* odd sites only: the even sites (and each doc's admin, site
             i mod K = lowest) keep the session alive through the cut *)
          if partition_ms > 0 && site mod 2 = 1 then
            Some (duration *. 1000. /. 3., float_of_int partition_ms)
          else None
        in
        let pid = Unix.fork () in
        if pid = 0 then
          editor_child ~cell ~metrics ~admin ~site ~doc ~relay_port ~rate
            ~duration ~seed ~chaos ~partition ~trace_path ();
        (site, pid, admin_port))
      all_users
  in
  let pids = relay_pid :: List.map (fun (_, p, _) -> p) eds in
  Printf.printf
    "loadgen: hub on %d (admin %d), %d editor(s) over %d doc(s), %g op/s each \
     for %gs\n%!"
    relay_port relay_admin_port editors ndocs rate duration;
  (match chaos with
   | Some cfg ->
     Printf.printf "loadgen: chaos %s (seed %d)%s\n%!" (Netd.Faults.to_string cfg)
       seed
       (if partition_ms > 0 then
          Printf.sprintf ", odd sites partitioned for %dms mid-run" partition_ms
        else "")
   | None ->
     if partition_ms > 0 then
       Printf.printf "loadgen: odd sites partitioned for %dms mid-run (seed %d)\n%!"
         partition_ms seed);
  (* phase 1: every editor joined *)
  let joined (_, _, aport) =
    match http_get ~port:aport ~path:"/healthz" with
    | Error _ -> false
    | Ok body -> (
      match Obs.Json.of_string (String.trim body) with
      | Error _ -> false
      | Ok j -> (
        match Obs.Json.member "joined" j with
        | Some (Obs.Json.Bool b) -> b
        | _ -> false))
  in
  let join_deadline = Obs.Clock.now_ms () +. 30_000. in
  let rec wait_join () =
    if List.for_all joined eds then true
    else if Obs.Clock.now_ms () > join_deadline then false
    else begin
      Unix.sleepf 0.1;
      wait_join ()
    end
  in
  if not (wait_join ()) then begin
    prerr_endline "loadgen: editors failed to join within 30s";
    kill_all pids;
    exit 2
  end;
  Printf.printf "loadgen: all editors joined; driving load...\n%!";
  (* phase 2: the measurement window, plus drain time for stragglers
     (a partition needs its heal reconnect to finish inside the drain) *)
  Unix.sleepf
    (duration
    +. (float_of_int drain_ms /. 1000.)
    +. if partition_ms > 0 then float_of_int partition_ms /. 1000. else 0.);
  (* phase 3: scrape every live admin endpoint and merge *)
  let merged = Obs.Metrics.create () in
  let scrape_failures = ref [] in
  List.iter
    (fun (name, aport) ->
      match http_get ~port:aport ~path:"/metrics" with
      | Ok body -> Obs.Export.merge_into merged (Obs.Export.parse_exposition body)
      | Error e -> scrape_failures := (name ^ ": " ^ e) :: !scrape_failures)
    (("relay", relay_admin_port)
     :: List.map (fun (s, _, p) -> (Printf.sprintf "site%d" s, p)) eds);
  kill_all pids;
  (* phase 4: the report *)
  let counters = Obs.Metrics.counters merged in
  let gauges = Obs.Metrics.gauges merged in
  let hists = Obs.Metrics.histograms merged in
  let counter name = try List.assoc name counters with Not_found -> 0 in
  let labeled base doc =
    counter (base ^ Obs.Metrics.render_labels [ ("doc", doc) ])
  in
  let per_doc =
    List.init ndocs (fun d ->
        let doc = doc_name d in
        let members = List.length (doc_sites d) in
        (doc, members, labeled "load_sent" doc, labeled "load_delivered" doc))
  in
  let sent = List.fold_left (fun a (_, _, s, _) -> a + s) 0 per_doc in
  let delivered = counter "controller_delivered" in
  let e2e =
    try Some (List.assoc "e2e_propagation_ns" hists) with Not_found -> None
  in
  let e2e_count = match e2e with Some s -> s.Obs.Metrics.count | None -> 0 in
  let e2e_p f = match e2e with Some s when e2e_count > 0 -> f s | _ -> 0. in
  let offered = float_of_int editors *. rate *. duration in
  (* every op sent into doc d should be delivered at the doc's other
     n_d - 1 editors plus the hub's own controller: n_d deliveries *)
  let expected =
    List.fold_left (fun a (_, n, s, _) -> a + (s * n)) 0 per_doc
  in
  let ratio =
    if expected = 0 then 0. else float_of_int delivered /. float_of_int expected
  in
  let throughput = float_of_int delivered /. duration in
  let per_doc_json =
    List.map
      (fun (doc, members, s, d) ->
        Obs.Json.Obj
          [
            ("doc", Obs.Json.String doc);
            ("editors", Obs.Json.Int members);
            ("sent_ops", Obs.Json.Int s);
            ("delivered", Obs.Json.Int d);
            ( "throughput_per_s",
              Obs.Json.Float (float_of_int d /. duration) );
          ])
      per_doc
  in
  let report =
    Obs.Json.Obj
      [
        ("section", Obs.Json.String "load");
        ("editors", Obs.Json.Int editors);
        ("docs", Obs.Json.Int ndocs);
        ("rate_per_editor", Obs.Json.Float rate);
        ("duration_s", Obs.Json.Float duration);
        ("seed", Obs.Json.Int seed);
        ( "chaos",
          match chaos with
          | Some cfg -> Obs.Json.String (Netd.Faults.to_string cfg)
          | None -> Obs.Json.String "" );
        ("partition_ms", Obs.Json.Int partition_ms);
        ("offered_ops", Obs.Json.Float offered);
        ("sent_ops", Obs.Json.Int sent);
        ("delivered", Obs.Json.Int delivered);
        ("delivery_ratio", Obs.Json.Float ratio);
        ("throughput_per_s", Obs.Json.Float throughput);
        ("per_doc", Obs.Json.List per_doc_json);
        ("e2e_samples", Obs.Json.Int e2e_count);
        ("e2e_p50_ns", Obs.Json.Float (e2e_p (fun s -> s.Obs.Metrics.p50)));
        ("e2e_p95_ns", Obs.Json.Float (e2e_p (fun s -> s.Obs.Metrics.p95)));
        ("e2e_p99_ns", Obs.Json.Float (e2e_p (fun s -> s.Obs.Metrics.p99)));
        ( "counters",
          Obs.Json.Obj (List.map (fun (n, v) -> (n, Obs.Json.Int v)) counters) );
        ( "gauges",
          Obs.Json.Obj (List.map (fun (n, v) -> (n, Obs.Json.Int v)) gauges) );
        ( "histograms",
          Obs.Json.Obj (List.map (fun (n, s) -> (n, json_of_summary s)) hists) );
      ]
  in
  let oc = open_out out in
  output_string oc (Obs.Json.to_string report);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "loadgen: sent %d, delivered %d (%.0f%% of expected), %.1f deliveries/s, \
     e2e p95 %.3f ms (%d sample(s))\n\
     report written to %s; traces in %s/\n%!"
    sent delivered (ratio *. 100.) throughput
    (e2e_p (fun s -> s.Obs.Metrics.p95) /. 1e6)
    e2e_count out trace_dir;
  let failures =
    List.concat
      [
        List.map (fun f -> "scrape failed: " ^ f) !scrape_failures;
        (if delivered = 0 then [ "nothing was delivered" ] else []);
        (if e2e_count = 0 then [ "no end-to-end latency samples" ] else []);
        (if ratio < min_ratio then
           [
             Printf.sprintf "delivery ratio %.2f under the gate %.2f" ratio
               min_ratio;
           ]
         else []);
      ]
  in
  List.iter (fun f -> Printf.eprintf "loadgen: FAIL: %s\n%!" f) failures;
  if failures = [] then 0 else 1

open Cmdliner

let editors =
  Arg.(value & opt int 3
       & info [ "editors" ] ~docv:"N" ~doc:"Editor processes (>= 2); site 0 is \
                                            the administrator.")

let rate =
  Arg.(value & opt float 20.
       & info [ "rate" ] ~docv:"OPS" ~doc:"Offered load per editor, ops/second \
                                           (open loop).")

let duration =
  Arg.(value & opt float 5.
       & info [ "duration" ] ~docv:"SECONDS" ~doc:"Length of the generation window.")

let drain_ms =
  Arg.(value & opt int 2000
       & info [ "drain-ms" ] ~docv:"MS"
           ~doc:"Extra settle time before scraping, for in-flight messages.")

let port =
  Arg.(value & opt int 0
       & info [ "port" ] ~docv:"PORT" ~doc:"Relay TCP port (0 = ephemeral).")

let text =
  Arg.(value & opt string "abc" & info [ "text" ] ~docv:"TEXT" ~doc:"Initial document.")

let trace_dir =
  Arg.(value & opt string "loadgen-traces"
       & info [ "trace-dir" ] ~docv:"DIR"
           ~doc:"Per-process JSONL traces land here (one per site plus the \
                 relay), ready for `trace.exe merge`.")

let out =
  Arg.(value & opt string "BENCH_load.json"
       & info [ "out" ] ~docv:"FILE" ~doc:"Report file.")

let min_ratio =
  Arg.(value & opt float 0.
       & info [ "min-delivery-ratio" ] ~docv:"R"
           ~doc:"Fail (exit 1) when delivered / expected falls under $(docv) — \
                 the CI throughput-regression gate.")

let docs_k =
  Arg.(value & opt int 1
       & info [ "docs" ] ~docv:"K"
           ~doc:"Shard the editors over $(docv) hub documents (editor i works \
                 on doc load(i mod K)); the report adds a per-document \
                 throughput breakdown.")

let seed =
  Arg.(value & opt int 0
       & info [ "seed" ] ~docv:"N"
           ~doc:"Seed for the chaos fault plans and the reconnect jitter: the \
                 same seed replays the same fault schedule.")

let chaos_arg =
  Arg.(value & opt (some string) None
       & info [ "chaos" ] ~docv:"SPEC"
           ~doc:"Run every editor's outgoing frames through a seeded fault \
                 plan, e.g. \
                 $(b,dup=0.05,delay=0.1,delay_ms=40,reorder=0.05).  Combine \
                 with --min-delivery-ratio to gate graceful degradation.")

let partition_ms =
  Arg.(value & opt int 0
       & info [ "partition-ms" ] ~docv:"MS"
           ~doc:"Cut the odd-site editors off (outgoing frames dropped) for \
                 $(docv) starting a third of the way into the run, then heal \
                 by forcing a reconnect; the delivery gate then proves the \
                 rejoin snapshot + catch-up re-broadcast recovered the loss.")

let cmd =
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Open-loop SLO load harness: hub + N editors, scraped live")
    Term.(const run $ editors $ rate $ duration $ drain_ms $ port $ text
          $ trace_dir $ out $ min_ratio $ docs_k $ seed $ chaos_arg
          $ partition_ms)

let () = exit (Cmd.eval' cmd)
