(* p2pedit: a scriptable multi-site collaborative editor.

   The CLI counterpart of the paper's p2pEdit prototype (Fig. 6): it
   hosts every site of a session in one process with an explicit
   in-flight message pool, so delivery order — the whole subject of the
   paper — is under your control.

     dune exec bin/p2pedit.exe -- --users 2 --text "abc"

   With --connect the same tool becomes ONE site of a multi-process
   session hosted by a dced relay (see bin/dced.ml): this process runs
   a single controller, joins from a snapshot, and exchanges messages
   over real TCP.  Connect-mode commands drop the site column (you are
   the site) and add `sleep <ms>` to pump the network from scripts:

     dune exec bin/p2pedit.exe -- --connect 127.0.0.1:7471 --site 1

   Commands (one per line, '#' comments; read from stdin, so sessions
   can be piped in as scripts):

     ins <site> <pos> <char>     insert at a visible position
     del <site> <pos>            delete the element at a visible position
     up  <site> <pos> <char>     replace the element at a visible position
     deny <user> <right>         admin adds a top negative authorization
                                 (right: i, d or u)
     allow <user> <right>        admin adds a top positive authorization
     adduser <user>              admin registers a user
     deliver [<n>|all]           deliver the n-th in-flight message (default
                                 0), or everything
     save <site> <file>          persist a site's full state to disk
     load <site> <file>          replace a site's state from disk
     wire                        list in-flight messages
     show                        show every site's document and version
     log <site>                  show a site's cooperative log
     policy <site>               show a site's policy copy
     quit

   Site 0 is the administrator. *)

open Dce_ot
open Dce_core
module Obs = Dce_obs

type state = {
  mutable sites : (int * char Controller.t) list;
  mutable wire : (int * char Controller.message) list;
  sink : Obs.Trace.sink;
}

let controller st u =
  match List.assoc_opt u st.sites with
  | Some c -> c
  | None -> failwith (Printf.sprintf "no site %d" u)

let set st u c =
  st.sites <- List.map (fun (v, c') -> if v = u then (v, c) else (v, c')) st.sites

let post st src msgs =
  List.iter
    (fun m ->
      if Obs.Trace.enabled st.sink then begin
        let c = controller st src in
        Obs.Trace.emit st.sink ~site:src ~clock:(Controller.clock c)
          ~version:(Controller.version c)
          (Obs.Trace.Broadcast
             {
               targets = List.length st.sites - 1;
               coop = (match m with Controller.Coop _ -> true | Controller.Admin _ -> false);
             })
      end;
      List.iter (fun (u, _) -> if u <> src then st.wire <- st.wire @ [ (u, m) ]) st.sites)
    msgs

let pp_message ppf = function
  | Controller.Coop q -> Request.pp Fmt.char ppf q
  | Controller.Admin r -> Admin_op.pp_request ppf r

let show st =
  List.iter
    (fun (u, c) ->
      Printf.printf "site %d%s: %S  (policy v%d%s)\n" u
        (if Controller.is_admin c then "*" else "")
        (Tdoc.visible_string (Controller.document c))
        (Controller.version c)
        (match List.length (Controller.tentative c) with
         | 0 -> ""
         | n -> Printf.sprintf ", %d tentative" n))
    st.sites;
  Printf.printf "%d message(s) in flight\n" (List.length st.wire)

let edit st u op =
  match Controller.generate (controller st u) op with
  | c, Controller.Accepted m ->
    set st u c;
    post st u [ m ];
    Printf.printf "site %d -> %S\n" u (Tdoc.visible_string (Controller.document c))
  | _, Controller.Denied reason -> Printf.printf "site %d denied: %s\n" u reason

let admin st op =
  match Controller.admin_update (controller st 0) op with
  | Ok (c, m) ->
    set st 0 c;
    post st 0 [ m ];
    Printf.printf "admin -> policy v%d\n" (Controller.version c)
  | Error e -> Printf.printf "admin error: %s\n" e

let deliver st k =
  let rec take i acc = function
    | [] -> None
    | m :: rest when i = 0 -> Some (m, List.rev_append acc rest)
    | m :: rest -> take (i - 1) (m :: acc) rest
  in
  match take k [] st.wire with
  | None -> Printf.printf "no such message\n"
  | Some ((dst, m), rest) ->
    st.wire <- rest;
    let c, emitted = Controller.receive (controller st dst) m in
    set st dst c;
    post st dst emitted;
    Format.printf "delivered to %d: %a@." dst pp_message m

let right_of_string = function
  | "i" | "iR" -> Some Right.Insert
  | "d" | "dR" -> Some Right.Delete
  | "u" | "uR" -> Some Right.Update
  | "r" | "rR" -> Some Right.Read
  | _ -> None

let session users text sink =
  let all = List.init (users + 1) Fun.id in
  let policy =
    Policy.make ~users:all [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]
  in
  let doc0 = Tdoc.of_string text in
  let st =
    {
      sites =
        List.map
          (fun u ->
            (u, Controller.create ~eq:Char.equal ~site:u ~admin:0 ~policy ~trace:sink doc0))
          all;
      wire = [];
      sink;
    }
  in
  show st;
  (try
     while true do
       print_string "> ";
       let line = read_line () in
       let words =
         List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim line))
       in
       try
         match words with
         | [] -> ()
         | w :: _ when String.length w > 0 && w.[0] = '#' -> ()
         | [ "quit" ] | [ "exit" ] -> raise Exit
         | [ "show" ] -> show st
         | [ "wire" ] ->
           List.iteri
             (fun i (dst, m) -> Format.printf "%2d: to %d: %a@." i dst pp_message m)
             st.wire
         | [ "deliver" ] -> deliver st 0
         | [ "deliver"; "all" ] ->
           while st.wire <> [] do
             deliver st 0
           done
         | [ "deliver"; n ] -> deliver st (int_of_string n)
         | [ "ins"; u; p; ch ] when String.length ch = 1 ->
           let u = int_of_string u in
           edit st u
             (Tdoc.ins_visible (Controller.document (controller st u)) (int_of_string p)
                ch.[0])
         | [ "del"; u; p ] ->
           let u = int_of_string u in
           edit st u
             (Tdoc.del_visible (Controller.document (controller st u)) (int_of_string p))
         | [ "up"; u; p; ch ] when String.length ch = 1 ->
           let u = int_of_string u in
           edit st u
             (Tdoc.up_visible (Controller.document (controller st u)) (int_of_string p)
                ch.[0])
         | [ "deny"; u; r ] -> (
             match right_of_string r with
             | Some right ->
               admin st
                 (Admin_op.Add_auth
                    (0, Auth.deny [ Subject.User (int_of_string u) ] [ Docobj.Whole ]
                       [ right ]))
             | None -> Printf.printf "unknown right %S (use i, d, u or r)\n" r)
         | [ "allow"; u; r ] -> (
             match right_of_string r with
             | Some right ->
               admin st
                 (Admin_op.Add_auth
                    (0, Auth.grant [ Subject.User (int_of_string u) ] [ Docobj.Whole ]
                       [ right ]))
             | None -> Printf.printf "unknown right %S (use i, d, u or r)\n" r)
         | [ "adduser"; u ] -> admin st (Admin_op.Add_user (int_of_string u))
         | [ "save"; u; path ] ->
           Dce_wire.Proto.Char_proto.save path (controller st (int_of_string u));
           Printf.printf "site %s saved to %s\n" u path
         | [ "load"; u; path ] -> (
             match Dce_wire.Proto.Char_proto.restore ~trace:st.sink path with
             | Ok c -> begin
                 let u = int_of_string u in
                 match List.assoc_opt u st.sites with
                 | Some _ ->
                   set st u c;
                   Printf.printf "site %d restored from %s\n" u path
                 | None -> Printf.printf "no site %d in this session\n" u
               end
             | Error e -> Printf.printf "restore failed: %s\n" e)
         | [ "log"; u ] ->
           Format.printf "%a@."
             (Oplog.pp Fmt.char)
             (Controller.oplog (controller st (int_of_string u)))
         | [ "policy"; u ] ->
           Format.printf "%a@." Policy.pp
             (Controller.policy (controller st (int_of_string u)))
         | _ -> Printf.printf "unrecognized command (see the header of bin/p2pedit.ml)\n"
       with
       | Exit -> raise Exit
       | Failure msg -> Printf.printf "error: %s\n" msg
       | Invalid_argument msg -> Printf.printf "error: %s\n" msg
     done
   with Exit | End_of_file -> ());
  print_endline "\nfinal state:";
  show st

(* ----- networked mode (--connect): one site against a dced relay ----- *)

module Netd = Dce_netd
module Proto = Dce_wire.Proto

type net_state = {
  client : Netd.Client.t;
  my_site : int;
  sink : Obs.Trace.sink;
  journal : char Dce_store.Persist.t option;
  metrics : Obs.Metrics.t option;
  (* origin-stamp to integration latency of incoming stamped messages;
     points into a disabled registry when --metrics is off *)
  e2e_ns : Obs.Metrics.histogram;
  mutable ctrl : char Controller.t option;
  (* messages owed to the group (WAL-replay re-emissions) held until the
     connection is live: Client.send drops anything sent earlier *)
  mutable pending : char Controller.message list;
  mutable admin_srv : Netd.Admin.t option;
  mutable last_compact_ms : float;
}

(* every outgoing message carries an origin stamp: receivers measure
   end-to-end propagation from it, and it costs ~15 bytes *)
let net_send st m =
  Netd.Client.send st.client
    (Proto.Char_proto.encode_message ~stamp:(Proto.stamp_now ~site:st.my_site ()) m)

let journal_record st r =
  match st.journal with
  | None -> ()
  | Some j -> (
    Dce_store.Persist.record j r;
    match st.ctrl with
    | None -> ()
    | Some c -> (
      match Dce_store.Persist.maybe_checkpoint j c with
      | Ok _ -> ()
      | Error e -> Printf.printf "journal error: %s\n%!" e))

let journal_checkpoint st =
  match (st.journal, st.ctrl) with
  | Some j, Some c -> (
    match Dce_store.Persist.checkpoint j c with
    | Ok () -> ()
    | Error e -> Printf.printf "journal error: %s\n%!" e)
  | _ -> ()

let net_show st =
  match st.ctrl with
  | None -> Printf.printf "site %d: not joined yet\n%!" st.my_site
  | Some c ->
    Printf.printf "site %d%s: %S  (policy v%d%s)\n%!" st.my_site
      (if Controller.is_admin c then "*" else "")
      (Tdoc.visible_string (Controller.document c))
      (Controller.version c)
      (match List.length (Controller.tentative c) with
       | 0 -> ""
       | n -> Printf.sprintf ", %d tentative" n)

let net_handle st = function
  | Netd.Client.Connected ->
    Printf.printf "connected; joining as site %d...\n%!" st.my_site
  | Netd.Client.Snapshot blob -> (
    match Proto.Char_proto.decode_state blob with
    | Error e -> Printf.printf "bad snapshot: %s\n%!" e
    | Ok state -> (
      match Controller.load ~eq:Char.equal ~trace:st.sink ?metrics:st.metrics state with
      | Error e -> Printf.printf "snapshot rejected: %s\n%!" e
      | Ok donor ->
        let to_send =
          match st.ctrl with
          | Some mine ->
            (* we hold local state (journal recovery, or a previous
               connection): keep it, replay the relay's history through
               our own controller, and re-broadcast whatever the group
               has not seen — the durable alternative to the lossy
               [rejoin] *)
            let mine, out = Controller.catch_up mine donor in
            st.ctrl <- Some mine;
            if out <> [] then
              Printf.printf "caught up; re-broadcasting %d message(s)\n%!"
                (List.length out);
            out
          | None ->
            st.ctrl <- Some (Controller.rejoin ~site:st.my_site donor);
            []
        in
        let to_send = to_send @ st.pending in
        st.pending <- [];
        List.iter (net_send st) to_send;
        (* the catch-up inputs came from the snapshot, not the journal:
           cut a checkpoint so the store reflects the merged state *)
        journal_checkpoint st;
        Netd.Client.set_stamp st.client (fun () ->
            match st.ctrl with
            | Some c -> (Controller.clock c, Controller.version c)
            | None -> (Vclock.empty, 0));
        net_show st))
  | Netd.Client.Message blob -> (
    match Proto.Char_proto.decode_message_stamped blob with
    | Error e -> Printf.printf "bad message: %s\n%!" e
    | Ok (stamp, m) -> (
      match st.ctrl with
      | None -> ()
      | Some c -> (
        (* the blob decoded, but applying it is what validates its
           semantics — a buggy or hostile relay/peer must not abort
           this process, so drop the message instead of propagating *)
        match Controller.receive c m with
        | c, emitted ->
          st.ctrl <- Some c;
          (match stamp with
           | Some s ->
             Obs.Metrics.observe st.e2e_ns (Obs.Clock.now_ns () - s.Proto.s_ns)
           | None -> ());
          journal_record st (Dce_store.Persist.Received m);
          List.iter (net_send st) emitted
        | exception e ->
          let detail =
            match e with
            | Invalid_argument m | Failure m | Document.Edit_conflict m -> m
            | e -> Printexc.to_string e
          in
          Printf.printf "bad message (dropped): %s\n%!" detail)))
  | Netd.Client.Delta blob -> (
    (* the relay honored our resume point: a log suffix instead of a full
       snapshot.  Only ever sent when we presented local state, so a
       missing controller here is a protocol violation worth reporting *)
    match Proto.Char_proto.decode_delta blob with
    | Error e -> Printf.printf "bad delta: %s\n%!" e
    | Ok d -> (
      match st.ctrl with
      | None -> Printf.printf "delta without local state (dropped)\n%!"
      | Some mine -> (
        match Controller.apply_delta mine d with
        | Error e -> Printf.printf "delta rejected: %s\n%!" e
        | Ok (mine, out) ->
          st.ctrl <- Some mine;
          if out <> [] then
            Printf.printf "caught up (delta); re-broadcasting %d message(s)\n%!"
              (List.length out);
          let to_send = out @ st.pending in
          st.pending <- [];
          List.iter (net_send st) to_send;
          journal_checkpoint st;
          Netd.Client.set_stamp st.client (fun () ->
              match st.ctrl with
              | Some c -> (Controller.clock c, Controller.version c)
              | None -> (Vclock.empty, 0));
          net_show st)))
  | Netd.Client.Beacon blob -> (
    match Proto.decode_frontier blob with
    | Error _ -> () (* gossip is advisory; a bad blob costs nothing *)
    | Ok entries -> (
      match st.ctrl with
      | None -> ()
      | Some c ->
        st.ctrl <-
          Some
            (List.fold_left
               (fun c (b : Proto.beacon) ->
                 Controller.receive_beacon c ~peer:b.Proto.b_site
                   ~clock:b.Proto.b_clock ~version:b.Proto.b_version)
               c entries)))
  | Netd.Client.Disconnected reason -> Printf.printf "disconnected: %s\n%!" reason
  | Netd.Client.Reconnecting { attempt; delay_ms } ->
    Printf.printf "reconnecting (attempt %d) in %d ms\n%!" attempt delay_ms
  | Netd.Client.Gave_up reason -> Printf.printf "gave up: %s\n%!" reason

(* Periodic window compaction.  Journaled editors never let the
   compaction cut outrun the durable snapshot: checkpoint first when the
   stable frontier moved past the last cut, then clamp to it. *)
let net_compact st =
  match st.ctrl with
  | None -> ()
  | Some c -> (
    match st.journal with
    | None -> st.ctrl <- Some (Controller.compact c)
    | Some j ->
      (match Dce_store.Persist.checkpoint_clock j with
       | Some cut when Vclock.leq (Controller.stable_frontier c) cut -> ()
       | _ -> journal_checkpoint st);
      (match Dce_store.Persist.checkpoint_clock j with
       | Some limit -> st.ctrl <- Some (Controller.compact ~limit c)
       | None -> ()))

let compact_every_ms = 5_000.

let net_step st timeout_ms =
  List.iter (net_handle st) (Netd.Client.step ~timeout_ms st.client);
  let now = Obs.Clock.now_ms () in
  if now -. st.last_compact_ms >= compact_every_ms then begin
    st.last_compact_ms <- now;
    net_compact st
  end;
  Option.iter Netd.Admin.step st.admin_srv

let net_pump st ms =
  let deadline = Obs.Clock.now_ms () +. float_of_int ms in
  let rec go () =
    let remaining_ms = deadline -. Obs.Clock.now_ms () in
    if remaining_ms > 0. && not (Netd.Client.stopped st.client) then begin
      net_step st (int_of_float (Float.min 50. remaining_ms));
      go ()
    end
  in
  go ()

let net_edit st op_of_ctrl =
  match st.ctrl with
  | None -> Printf.printf "not joined yet\n%!"
  | Some c -> (
    let op = op_of_ctrl c in
    match Controller.generate c op with
    | c, Controller.Accepted m ->
      st.ctrl <- Some c;
      (* journal before broadcast: the group must never hold a request
         its origin site could forget in a crash *)
      journal_record st (Dce_store.Persist.Generated op);
      net_send st m;
      Printf.printf "site %d -> %S\n%!" st.my_site
        (Tdoc.visible_string (Controller.document c))
    | _, Controller.Denied reason -> Printf.printf "denied: %s\n%!" reason)

let net_admin st op =
  match st.ctrl with
  | None -> Printf.printf "not joined yet\n%!"
  | Some c -> (
    match Controller.admin_update c op with
    | Ok (c, m) ->
      st.ctrl <- Some c;
      journal_record st (Dce_store.Persist.Admin_cmd op);
      net_send st m;
      Printf.printf "admin -> policy v%d\n%!" (Controller.version c)
    | Error e -> Printf.printf "admin error: %s\n%!" e)

let net_command st words =
  match words with
  | [] -> ()
  | w :: _ when String.length w > 0 && w.[0] = '#' -> ()
  | [ "quit" ] | [ "exit" ] -> raise Exit
  | [ "show" ] -> net_show st
  | [ "sleep"; ms ] -> net_pump st (int_of_string ms)
  | [ "ins"; p; ch ] when String.length ch = 1 ->
    net_edit st (fun c ->
        Tdoc.ins_visible (Controller.document c) (int_of_string p) ch.[0])
  | [ "del"; p ] ->
    net_edit st (fun c -> Tdoc.del_visible (Controller.document c) (int_of_string p))
  | [ "up"; p; ch ] when String.length ch = 1 ->
    net_edit st (fun c ->
        Tdoc.up_visible (Controller.document c) (int_of_string p) ch.[0])
  | [ "deny"; u; r ] -> (
      match right_of_string r with
      | Some right ->
        net_admin st
          (Admin_op.Add_auth
             (0, Auth.deny [ Subject.User (int_of_string u) ] [ Docobj.Whole ] [ right ]))
      | None -> Printf.printf "unknown right %S (use i, d, u or r)\n%!" r)
  | [ "allow"; u; r ] -> (
      match right_of_string r with
      | Some right ->
        net_admin st
          (Admin_op.Add_auth
             (0, Auth.grant [ Subject.User (int_of_string u) ] [ Docobj.Whole ] [ right ]))
      | None -> Printf.printf "unknown right %S (use i, d, u or r)\n%!" r)
  | [ "adduser"; u ] -> net_admin st (Admin_op.Add_user (int_of_string u))
  | [ "log" ] -> (
      match st.ctrl with
      | None -> Printf.printf "not joined yet\n%!"
      | Some c -> Format.printf "%a@." (Oplog.pp Fmt.char) (Controller.oplog c))
  | [ "policy" ] -> (
      match st.ctrl with
      | None -> Printf.printf "not joined yet\n%!"
      | Some c -> Format.printf "%a@." Policy.pp (Controller.policy c))
  | _ ->
    Printf.printf
      "unrecognized command (connect mode: ins/del/up/deny/allow/adduser/show/log/policy/sleep/quit)\n%!"

(* stdin is consumed with raw reads and an explicit line buffer, so it
   can sit in the same select as the socket without an in_channel
   buffering the lines away between wakeups *)
let net_session host port my_site doc sink metrics data_dir fsync admin_port seed
    chaos =
  let journal, ctrl0, pending0 =
    match data_dir with
    | None -> (None, None, [])
    | Some dir -> (
      let config = { Dce_store.Store.default_config with fsync } in
      match
        Dce_store.Persist.opendir ~config ~eq:Char.equal ~trace:sink
          ~codec:Proto.char_codec dir
      with
      | Error e ->
        prerr_endline ("p2pedit: " ^ e);
        exit 1
      | Ok (j, rec_) ->
        (match rec_.Dce_store.Persist.controller with
         | Some _ ->
           Printf.printf
             "recovered site %d from %s (generation %d, %d log record(s) replayed%s)\n%!"
             my_site dir
             (Dce_store.Persist.generation j)
             rec_.Dce_store.Persist.replayed
             (if rec_.Dce_store.Persist.truncated_bytes > 0 then
                Printf.sprintf ", %d torn byte(s) dropped"
                  rec_.Dce_store.Persist.truncated_bytes
              else "")
         | None -> ());
        ( Some j,
          rec_.Dce_store.Persist.controller,
          rec_.Dce_store.Persist.emitted ))
  in
  (match ctrl0 with
   | Some c when Controller.site c <> my_site ->
     Printf.eprintf "p2pedit: %s holds state for site %d, not --site %d\n"
       (Option.get data_dir) (Controller.site c) my_site;
     exit 2
   | _ -> ());
  let ctrl0 =
    match (ctrl0, metrics) with
    | Some c, Some m -> Some (Controller.with_metrics m c)
    | _ -> ctrl0
  in
  (* advertise recovered state on (re)connect so the relay can answer
     with a cheap log-suffix delta instead of a full snapshot; reads
     through a cell because the live controller is held by [st] below *)
  let resume_src =
    ref (fun () ->
        match ctrl0 with
        | Some c -> Some (Controller.clock c, Controller.version c)
        | None -> None)
  in
  let faults =
    Option.map
      (fun cfg ->
        Netd.Faults.create ~config:cfg ~seed
          ~label:(Printf.sprintf "site-%d" my_site)
          ())
      chaos
  in
  let client =
    Netd.Client.create ?metrics ~trace:sink ~seed ?doc ?faults ~host ~port
      ~site:my_site
      ~resume:(fun () -> !resume_src ())
      ()
  in
  let e2e_ns =
    let reg =
      match metrics with Some m -> m | None -> Obs.Metrics.create ~enabled:false ()
    in
    Obs.Metrics.histogram reg "e2e.propagation_ns"
  in
  let st =
    {
      client;
      my_site;
      sink;
      journal;
      metrics;
      e2e_ns;
      ctrl = ctrl0;
      pending = pending0;
      admin_srv = None;
      last_compact_ms = 0.;
    }
  in
  resume_src :=
    (fun () ->
      match st.ctrl with
      | Some c -> Some (Controller.clock c, Controller.version c)
      | None -> None);
  st.admin_srv <-
    Option.map
      (fun p ->
        (* real health: a disconnected editor is degraded (the admin
           plane serves any not-"ok" status as a 503) *)
        let healthz () =
          let connected = Netd.Client.connected st.client in
          Obs.Json.Obj
            ([
               ("status", Obs.Json.String (if connected then "ok" else "degraded"));
               ("role", Obs.Json.String "editor");
               ("site", Obs.Json.Int my_site);
               ("pid", Obs.Json.Int (Unix.getpid ()));
               ("connected", Obs.Json.Bool connected);
             ]
            @
            if connected then []
            else [ ("reasons", Obs.Json.List [ Obs.Json.String "relay link down" ]) ])
        in
        let sessions () =
          match st.ctrl with
          | None -> Obs.Json.Obj [ ("joined", Obs.Json.Bool false) ]
          | Some c ->
            Obs.Json.Obj
              [
                ("joined", Obs.Json.Bool true);
                ("site", Obs.Json.Int my_site);
                ("doc_len", Obs.Json.Int
                   (Tdoc.visible_length (Controller.document c)));
                ("policy_version", Obs.Json.Int (Controller.version c));
                ("pending_coop", Obs.Json.Int (Controller.pending_coop c));
                ("pending_admin", Obs.Json.Int (Controller.pending_admin c));
                ("tentative", Obs.Json.Int
                   (List.length (Controller.tentative c)));
                ("window_len", Obs.Json.Int (Controller.window_len c));
                ("compacted_upto", Obs.Json.Int
                   (Vclock.sum (Controller.compacted_upto c)));
                ("stable_lag", Obs.Json.Int (Controller.stable_lag c));
              ]
        in
        let a = Netd.Admin.create ?metrics ~healthz ~sessions ~port:p () in
        Printf.printf "admin socket on %d\n%!" (Netd.Admin.port a);
        a)
      admin_port;
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let eof = ref false in
  (try
     while not !eof && not (Netd.Client.stopped st.client) do
       let fds =
         Unix.stdin
         :: ((match Netd.Client.fd st.client with Some fd -> [ fd ] | None -> [])
             @ match st.admin_srv with Some a -> Netd.Admin.fds a | None -> [])
       in
       let rd, _, _ =
         try Unix.select fds [] [] 0.1
         with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
       in
       (match metrics with
        | Some m ->
          Obs.Metrics.set
            (Obs.Metrics.gauge m "netd.outbox_bytes")
            (Netd.Client.outbox_bytes st.client)
        | None -> ());
       net_step st 0;
       if List.mem Unix.stdin rd then begin
         (match Unix.read Unix.stdin chunk 0 (Bytes.length chunk) with
          | 0 -> eof := true
          | n -> Buffer.add_subbytes buf chunk 0 n);
         let data = Buffer.contents buf in
         Buffer.clear buf;
         let rec lines s =
           match String.index_opt s '\n' with
           | Some i ->
             let line = String.sub s 0 i in
             let rest = String.sub s (i + 1) (String.length s - i - 1) in
             let words =
               List.filter (fun w -> w <> "")
                 (String.split_on_char ' ' (String.trim line))
             in
             (try net_command st words with
              | Exit -> raise Exit
              | Failure msg -> Printf.printf "error: %s\n%!" msg
              | Invalid_argument msg -> Printf.printf "error: %s\n%!" msg);
             lines rest
           | None -> Buffer.add_string buf s
         in
         lines data
       end
     done
   with Exit -> ());
  Option.iter Netd.Admin.close st.admin_srv;
  Netd.Client.close st.client;
  (match st.journal with
   | None -> ()
   | Some j ->
     journal_checkpoint st;
     Dce_store.Persist.close j);
  print_endline "final state:";
  net_show st

let run_local users text trace_file metrics_flag =
  let metrics = if metrics_flag then Some (Obs.Metrics.create ()) else None in
  Dce_wire.Codec.set_metrics metrics;
  let with_sink f =
    match trace_file with
    | None -> f Obs.Trace.null
    | Some path -> Obs.Trace.with_file path f
  in
  with_sink (fun file_sink ->
      let sink =
        match metrics with
        | None -> file_sink
        | Some m -> Obs.Trace.tee (Obs.Trace.count_into m) file_sink
      in
      session users text sink);
  (match trace_file with
   | Some path -> Printf.printf "trace written to %s\n" path
   | None -> ());
  match metrics with
  | Some m -> Format.printf "metrics:@.%a@." Obs.Metrics.pp m
  | None -> ()

let run users text trace_file metrics_flag connect site_arg doc_arg data_dir fsync
    admin_port seed chaos_arg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fsync =
    match Dce_store.Store.fsync_policy_of_string fsync with
    | Ok p -> p
    | Error e ->
      prerr_endline ("p2pedit: " ^ e);
      exit 2
  in
  let chaos =
    match chaos_arg with
    | None -> None
    | Some spec -> (
      match Netd.Faults.of_string spec with
      | Ok cfg -> Some cfg
      | Error e ->
        prerr_endline ("p2pedit: --chaos: " ^ e);
        exit 2)
  in
  match connect with
  | None ->
    ignore fsync;
    (match data_dir with
     | Some _ ->
       prerr_endline "p2pedit: --data-dir applies to connect mode (--connect)";
       exit 2
     | None -> ());
    (match doc_arg with
     | Some _ ->
       prerr_endline "p2pedit: --doc applies to connect mode (--connect)";
       exit 2
     | None -> ());
    run_local users text trace_file metrics_flag
  | Some spec ->
    let host, port =
      match String.rindex_opt spec ':' with
      | Some i -> (
          ( String.sub spec 0 i,
            try int_of_string (String.sub spec (i + 1) (String.length spec - i - 1))
            with Failure _ -> -1 ))
      | None -> (spec, -1)
    in
    if port < 0 then begin
      Printf.eprintf "p2pedit: --connect expects HOST:PORT, got %S\n" spec;
      exit 2
    end;
    let metrics =
      if metrics_flag || admin_port <> None then Some (Obs.Metrics.create ())
      else None
    in
    Dce_wire.Codec.set_metrics metrics;
    let with_sink f =
      match trace_file with
      | None -> f Obs.Trace.null
      | Some path -> Obs.Trace.with_file path f
    in
    with_sink (fun sink ->
        net_session host port site_arg doc_arg sink metrics data_dir fsync admin_port
          seed chaos);
    (match trace_file with
     | Some path -> Printf.printf "trace written to %s\n" path
     | None -> ());
    (match metrics with
     | Some m -> Format.printf "metrics:@.%a@." Obs.Metrics.pp m
     | None -> ())

open Cmdliner

let users =
  Arg.(value & opt int 2 & info [ "users" ] ~docv:"N" ~doc:"Number of non-admin users.")

let text =
  Arg.(value & opt string "abc" & info [ "text" ] ~docv:"TEXT" ~doc:"Initial document.")

let trace_file =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a JSONL trace of the session to $(docv) (inspect with bin/trace.exe).")

let metrics_flag =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Count events and wire-codec work; print the registry on exit.")

let connect =
  Arg.(value & opt (some string) None
       & info [ "connect" ] ~docv:"HOST:PORT"
           ~doc:"Join a dced relay as a single site instead of hosting every site \
                 in-process.")

let site_arg =
  Arg.(value & opt int 1
       & info [ "site" ] ~docv:"N"
           ~doc:"Site id to join as (with --connect; 0 is the administrator).")

let doc_arg =
  Arg.(value & opt (some string) None
       & info [ "doc" ] ~docv:"NAME"
           ~doc:"With --connect: attach to the hub's document $(docv) (v2 wire \
                 dialect).  Omitted, the client speaks the original single-doc \
                 protocol and the hub attaches it to its default document.")

let data_dir =
  Arg.(value & opt (some string) None
       & info [ "data-dir" ] ~docv:"DIR"
           ~doc:"With --connect: persist this site to $(docv) (write-ahead log + \
                 snapshots).  A killed process restarted on the same directory \
                 replays its log, resumes its identity, and re-broadcasts local \
                 requests the group has not seen — instead of the lossy snapshot \
                 rejoin.")

let fsync =
  Arg.(value & opt string "interval:64"
       & info [ "fsync" ] ~docv:"POLICY"
           ~doc:"Log durability policy with --data-dir: $(b,always), $(b,never), \
                 or $(b,interval:N).")

let admin_port =
  Arg.(value & opt (some int) None
       & info [ "admin" ] ~docv:"PORT"
           ~doc:"With --connect: serve a loopback admin socket on $(docv) (0 = \
                 ephemeral): $(b,/metrics) (Prometheus text exposition), \
                 $(b,/healthz) and $(b,/sessions) (JSON).  Implies --metrics.")

let seed =
  Arg.(value & opt int 0
       & info [ "seed" ] ~docv:"N"
           ~doc:"Process-level randomness seed: fixes the reconnect jitter and \
                 the --chaos fault plan, so a failing run can be replayed \
                 exactly.")

let chaos_arg =
  Arg.(value & opt (some string) None
       & info [ "chaos" ] ~docv:"SPEC"
           ~doc:"With --connect: filter every outgoing frame through a seeded \
                 fault plan, e.g. \
                 $(b,drop=0.05,dup=0.02,delay=0.1,delay_ms=40,reorder=0.05).")

let cmd =
  Cmd.v
    (Cmd.info "p2pedit" ~doc:"Scriptable secured collaborative editing session")
    Term.(const run $ users $ text $ trace_file $ metrics_flag $ connect $ site_arg
          $ doc_arg $ data_dir $ fsync $ admin_port $ seed $ chaos_arg)

let () = exit (Cmd.eval cmd)
