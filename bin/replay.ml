(* replay: seeded random-session fuzzer and convergence checker.

   Runs whole adversarial sessions (random edits + random policy
   changes + random delivery schedules) through the simulator and checks
   the convergence/security oracles at quiescence.  Every run is a pure
   function of its seed, so a reported violation is a ready-made
   reproduction recipe.

     dune exec bin/replay.exe -- --seeds 500
     dune exec bin/replay.exe -- --seed 90 --verbose   # replay one, verbose
     dune exec bin/replay.exe -- --no-undo --seeds 50  # watch the holes appear
     dune exec bin/replay.exe -- --trace /tmp/t.jsonl  # then bin/trace.exe

   Exits non-zero if any oracle is violated (CI-friendly). *)

open Dce_sim

let run_one profile features verbose sink metrics seed =
  let trace = if verbose then Some Format.std_formatter else None in
  match Runner.run ?trace ~features ?sink ?metrics profile ~seed with
  | result ->
    let report = Convergence.check result.Runner.controllers in
    if Convergence.ok report then `Ok result.Runner.stats
    else `Violation (Format.asprintf "%a" Convergence.pp report)
  | exception e -> `Crash (Printexc.to_string e)

let main users duration seed seeds verbose trace_file metrics_flag fifo
    max_latency handoff compact no_undo no_interval no_validation =
  let features =
    {
      Dce_core.Controller.retroactive_undo = not no_undo;
      interval_check = not no_interval;
      validation = not no_validation;
    }
  in
  let profile =
    {
      Workload.with_admin with
      users;
      duration;
      fifo;
      latency = Net.Uniform (1, max_latency);
      handoff_prob = (if handoff then 0.25 else 0.);
      compact_every = (if compact then Some 4 else None);
    }
  in
  let seed_list =
    match seed with Some s -> [ s ] | None -> List.init seeds (fun i -> i)
  in
  let metrics =
    if metrics_flag then Some (Dce_obs.Metrics.create ()) else None
  in
  let bad = ref 0 in
  let total_stats = ref None in
  (* With --trace the file is rewritten per seed, so after a multi-seed
     sweep it holds the last run — one complete session, which is what
     bin/trace.exe wants to audit. *)
  let with_sink f =
    match trace_file with
    | None -> f None
    | Some path -> Dce_obs.Trace.with_file path (fun s -> f (Some s))
  in
  List.iter
    (fun s ->
      let outcome =
        with_sink (fun sink -> run_one profile features verbose sink metrics s)
      in
      match outcome with
      | `Ok stats ->
        total_stats := Some stats;
        if verbose then Format.printf "seed %d: ok@.%a@." s Runner.pp_stats stats
      | `Violation report ->
        incr bad;
        Format.printf "seed %d: ORACLE VIOLATION@.%s@." s report
      | `Crash msg ->
        incr bad;
        Format.printf "seed %d: CRASH: %s@." s msg)
    seed_list;
  Format.printf "%d run(s), %d violation(s)@." (List.length seed_list) !bad;
  (match (!total_stats, verbose) with
   | Some stats, false ->
     Format.printf "last run stats:@.%a@." Runner.pp_stats stats
   | _ -> ());
  (match trace_file with
   | Some path -> Format.printf "trace of last run written to %s@." path
   | None -> ());
  (match metrics with
   | Some m -> Format.printf "metrics (all runs):@.%a@." Dce_obs.Metrics.pp m
   | None -> ());
  if !bad > 0 then 1 else 0

open Cmdliner

let users = Arg.(value & opt int 3 & info [ "users" ] ~doc:"Non-admin users.")
let duration = Arg.(value & opt int 2000 & info [ "duration" ] ~doc:"Virtual ms of editing.")
let seed = Arg.(value & opt (some int) None & info [ "seed" ] ~doc:"Run one specific seed.")
let seeds = Arg.(value & opt int 100 & info [ "seeds" ] ~doc:"Number of seeds (0..n-1).")
let verbose = Arg.(value & flag & info [ "verbose" ] ~doc:"Print every simulated event.")

let trace_file =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a JSONL trace of the last run to $(docv) (inspect with bin/trace.exe).")

let metrics_flag =
  Arg.(value & flag
       & info [ "metrics" ] ~doc:"Accumulate and print counters/histograms over all runs.")

let fifo = Arg.(value & flag & info [ "fifo" ] ~doc:"FIFO links (no per-link reordering).")

let max_latency =
  Arg.(value & opt int 300 & info [ "max-latency" ] ~doc:"Maximum message delay (ms).")

let handoff =
  Arg.(value & flag
       & info [ "handoff" ] ~doc:"Let the administrator delegate the role mid-session.")

let compact =
  Arg.(value & flag
       & info [ "compact" ] ~doc:"Garbage-collect logs during the session.")

let no_undo =
  Arg.(value & flag & info [ "no-undo" ] ~doc:"Disable retroactive undo (Fig. 2 hole).")

let no_interval =
  Arg.(value & flag
       & info [ "no-interval-check" ] ~doc:"Disable administrative log checks (Fig. 3 hole).")

let no_validation =
  Arg.(value & flag & info [ "no-validation" ] ~doc:"Disable validation (Fig. 4 hole).")

let cmd =
  Cmd.v
    (Cmd.info "replay" ~doc:"Randomized convergence and security checker")
    Term.(
      const main $ users $ duration $ seed $ seeds $ verbose $ trace_file
      $ metrics_flag $ fifo $ max_latency $ handoff $ compact $ no_undo
      $ no_interval $ no_validation)

let () = exit (Cmd.eval' cmd)
