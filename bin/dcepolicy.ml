(* dcepolicy: static analyzer for access-control policies.

   Where bin/dcecheck.exe explores the dynamic interleavings of a small
   session, dcepolicy analyzes the policy itself — no session at all:

     dune exec bin/dcepolicy.exe -- lint examples/policies/wiki.dcep
     dune exec bin/dcepolicy.exe -- diff old.dcep new.dcep
     dune exec bin/dcepolicy.exe -- trajectory examples/policies/storm.dcep
     dune exec bin/dcepolicy.exe -- check FILE --user 1 --right insert --pos 4

   Every finding carries a concrete witness access that is replayed
   through the real Policy.check/explain before it is reported; a
   REFUTED finding means an analyzer bug and exits 3.

   Exit status: 0 clean, 1 confirmed error findings (lint) or changes
   (diff/trajectory with --fail-on-change), 2 usage/parse error,
   3 internal (refuted witness). *)

module An = Dce_analysis

let load_file path =
  match An.Policy_file.load path with
  | Error e ->
    Format.eprintf "%s: %s@." path e;
    None
  | Ok pf -> (
    match An.Policy_file.final_policy pf with
    | Error e ->
      Format.eprintf "%s: %s@." path e;
      None
    | Ok p -> Some (pf, p))

let lint file json strict =
  match load_file file with
  | None -> 2
  | Some (_, policy) ->
    let r = An.Analyze.run policy in
    let errors = An.Analyze.errors r
    and warnings = An.Analyze.warnings r
    and refuted = An.Analyze.refuted r in
    if json then print_endline (Dce_obs.Json.to_string (An.Analyze.report_to_json r))
    else Format.printf "%a@." An.Analyze.pp_report r;
    if refuted <> [] then 3
    else if errors <> [] || (strict && warnings <> []) then 1
    else 0

let print_changes ~json changes =
  if json then
    print_endline
      (Dce_obs.Json.to_string
         (Dce_obs.Json.Obj
            [
              ("changes", Dce_obs.Json.Int (List.length changes));
              ("decisions", Dce_obs.Json.List (List.map An.Diff.change_to_json changes));
            ]))
  else if changes = [] then Format.printf "no decision changes@."
  else begin
    List.iter (fun c -> Format.printf "  %a@." An.Diff.pp_change c) changes;
    Format.printf "%d changed region(s)@." (List.length changes)
  end

let diff file_a file_b json fail_on_change =
  match (load_file file_a, load_file file_b) with
  | Some (_, a), Some (_, b) ->
    let changes = An.Diff.policies a b in
    print_changes ~json changes;
    if fail_on_change && changes <> [] then 1 else 0
  | _ -> 2

let trajectory file json fail_on_change =
  match load_file file with
  | None -> 2
  | Some (pf, _) -> (
    match An.Policy_file.log_of pf with
    | Error e ->
      Format.eprintf "%s: %s@." file e;
      2
    | Ok log ->
      let steps = An.Diff.trajectory log in
      let total = ref 0 in
      if json then
        print_endline
          (Dce_obs.Json.to_string
             (Dce_obs.Json.List
                (List.map
                   (fun ((r : Dce_core.Admin_op.request), changes) ->
                     total := !total + List.length changes;
                     Dce_obs.Json.Obj
                       [
                         ("version", Dce_obs.Json.Int r.version);
                         ( "op",
                           Dce_obs.Json.String
                             (Format.asprintf "%a" Dce_core.Admin_op.pp r.op) );
                         ( "decisions",
                           Dce_obs.Json.List (List.map An.Diff.change_to_json changes)
                         );
                       ])
                   steps)))
      else
        List.iter
          (fun ((r : Dce_core.Admin_op.request), changes) ->
            total := !total + List.length changes;
            Format.printf "v%d %a: %d changed region(s)@." r.version
              Dce_core.Admin_op.pp r.op (List.length changes);
            List.iter (fun c -> Format.printf "    %a@." An.Diff.pp_change c) changes)
          steps;
      if fail_on_change && !total > 0 then 1 else 0)

let parse_right = function
  | "read" -> Some Dce_core.Right.Read
  | "insert" -> Some Dce_core.Right.Insert
  | "delete" -> Some Dce_core.Right.Delete
  | "update" -> Some Dce_core.Right.Update
  | s -> Dce_core.Right.of_string s

let check file user right pos =
  match parse_right right with
  | None ->
    Format.eprintf "bad --right %S (want read/insert/delete/update)@." right;
    2
  | Some right -> (
    match load_file file with
    | None -> 2
    | Some (_, policy) ->
      let engine, _ = An.Engine.build policy in
      let flat = Dce_core.Policy.check policy ~user ~right ~pos in
      let indexed = An.Engine.check engine ~user ~right ~pos in
      let verdict = Dce_core.Policy.explain policy ~user ~right ~pos in
      Format.printf "%s (%s)@."
        (if flat then "ALLOW" else "DENY")
        (match verdict with
         | Dce_core.Policy.Unregistered -> "user not registered"
         | Dce_core.Policy.Default_deny -> "no rule matched: default deny"
         | Dce_core.Policy.Matched i ->
           Format.asprintf "decided by P%d: %a" i Dce_core.Auth.pp
             (Option.get (Dce_core.Policy.auth_at policy i)));
      if flat <> indexed then begin
        Format.eprintf
          "INTERNAL: indexed engine disagrees with the flat scan (engine=%b flat=%b)@."
          indexed flat;
        3
      end
      else 0)

open Cmdliner

let file_arg p = Arg.(required & pos p (some string) None & info [] ~docv:"FILE")
let json = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")

let fail_on_change =
  Arg.(value & flag
       & info [ "fail-on-change" ] ~doc:"Exit 1 if any decision changed.")

let lint_cmd =
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"Treat warnings as errors.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Shadowing, conflicts, redundancy and integrity lints over one policy")
    Term.(const lint $ file_arg 0 $ json $ strict)

let diff_cmd =
  Cmd.v
    (Cmd.info "diff" ~doc:"Exact decision changes between two policies")
    Term.(const diff $ file_arg 0 $ file_arg 1 $ json $ fail_on_change)

let trajectory_cmd =
  Cmd.v
    (Cmd.info "trajectory"
       ~doc:"Blast radius of every administrative step of a policy file's log")
    Term.(const trajectory $ file_arg 0 $ json $ fail_on_change)

let check_cmd =
  let user =
    Arg.(required & opt (some int) None & info [ "user" ] ~docv:"N" ~doc:"User id.")
  in
  let right =
    Arg.(value & opt string "insert"
         & info [ "right" ] ~docv:"R" ~doc:"read, insert, delete or update.")
  in
  let pos =
    Arg.(value & opt (some int) None & info [ "pos" ] ~docv:"P" ~doc:"Position.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Decide one access, explain the deciding rule, cross-check the index")
    Term.(const check $ file_arg 0 $ user $ right $ pos)

let cmd =
  Cmd.group
    (Cmd.info "dcepolicy" ~doc:"Static analyzer for access-control policies")
    [ lint_cmd; diff_cmd; trajectory_cmd; check_cmd ]

let () = exit (Cmd.eval' cmd)
