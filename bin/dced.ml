(* dced: the relay daemon.

   Hosts one collaborative editing session over real TCP: every
   connected site's messages are fanned out to every other site, and
   late joiners (or reconnecting sites) bootstrap from a snapshot of
   the relay's own session copy.  The relay enforces nothing from the
   paper's security model — each site's controller does, exactly as in
   the peer-to-peer deployment; the daemon only provides the reliable
   broadcast the model assumes (§3.3).

     dune exec bin/dced.exe -- --port 7471 --users 2 --text "abc"

   Then, from other terminals / machines:

     dune exec bin/p2pedit.exe -- --connect 127.0.0.1:7471 --site 1

   Site 0 is the administrator; sites 0..N are registered up front
   (more can join after an `adduser`).  SIGINT/SIGTERM shut down
   cleanly; with --metrics the transport counters are printed on
   exit. *)

open Dce_core
module Obs = Dce_obs
module Netd = Dce_netd

(* A site id no user will ever hold: the relay's controller is a
   passive group member that only integrates what it relays. *)
let relay_site = 1_000_000

let run port bind users text heartbeat_ms idle_timeout_ms data_dir fsync trace_file
    metrics_flag admin_port stats_jsonl =
  (* a peer slamming its socket shut mid-write must surface as EPIPE on
     that connection, not kill the daemon *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* the admin socket and the JSONL series both serve the registry, so
     either implies it *)
  let metrics =
    if metrics_flag || admin_port <> None || stats_jsonl <> None then
      Some (Obs.Metrics.create ())
    else None
  in
  Dce_wire.Codec.set_metrics metrics;
  let with_sink f =
    match trace_file with
    | None -> f Obs.Trace.null
    | Some path -> Obs.Trace.with_file path f
  in
  let fsync =
    match Dce_store.Store.fsync_policy_of_string fsync with
    | Ok p -> p
    | Error e ->
      prerr_endline ("dced: " ^ e);
      exit 2
  in
  with_sink (fun sink ->
      let fresh () =
        let all = List.init (users + 1) Fun.id in
        let policy =
          Policy.make ~users:all
            [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]
        in
        Controller.create ~eq:Char.equal ~site:relay_site ~admin:0 ~policy ~trace:sink
          ?metrics (Dce_ot.Tdoc.of_string text)
      in
      let journal, controller =
        match data_dir with
        | None -> (None, fresh ())
        | Some dir -> (
          let config = { Dce_store.Store.default_config with fsync } in
          match
            Dce_store.Persist.opendir ~config ~eq:Char.equal ~trace:sink
              ~codec:Dce_wire.Proto.char_codec dir
          with
          | Error e ->
            prerr_endline ("dced: " ^ e);
            exit 1
          | Ok (j, rec_) -> (
            match rec_.Dce_store.Persist.controller with
            | Some c ->
              Printf.printf
                "dced: recovered session from %s (generation %d, %d log record(s) \
                 replayed%s)\n%!"
                dir
                (Dce_store.Persist.generation j)
                rec_.Dce_store.Persist.replayed
                (if rec_.Dce_store.Persist.truncated_bytes > 0 then
                   Printf.sprintf ", %d torn byte(s) dropped"
                     rec_.Dce_store.Persist.truncated_bytes
                 else "");
              (Some j, c)
            | None ->
              let c = fresh () in
              (match Dce_store.Persist.checkpoint j c with
               | Ok () -> ()
               | Error e ->
                 prerr_endline ("dced: " ^ e);
                 exit 1);
              (Some j, c)))
      in
      let controller =
        match metrics with
        | Some m -> Controller.with_metrics m controller
        | None -> controller
      in
      let addr = Unix.inet_addr_of_string bind in
      let config =
        { Netd.Relay.default_config with heartbeat_ms; idle_timeout_ms }
      in
      let relay =
        Netd.Relay.create ~config ?metrics ~trace:sink ~addr ?journal
          ~codec:Dce_wire.Proto.char_codec ~controller ~port ()
      in
      let sessions () =
        let c = Netd.Relay.controller relay in
        Obs.Json.Obj
          [
            ("sites", Obs.Json.List
               (List.map (fun s -> Obs.Json.Int s) (Netd.Relay.connected_sites relay)));
            ("doc_len", Obs.Json.Int
               (Dce_ot.Tdoc.visible_length (Controller.document c)));
            ("policy_version", Obs.Json.Int (Controller.version c));
            ("pending_coop", Obs.Json.Int (Controller.pending_coop c));
            ("pending_admin", Obs.Json.Int (Controller.pending_admin c));
          ]
      in
      let healthz () =
        Obs.Json.Obj
          [
            ("status", Obs.Json.String "ok");
            ("role", Obs.Json.String "relay");
            ("pid", Obs.Json.Int (Unix.getpid ()));
            ("port", Obs.Json.Int (Netd.Relay.port relay));
          ]
      in
      let admin =
        Option.map
          (fun p -> Netd.Admin.create ?metrics ~healthz ~sessions ~port:p ())
          admin_port
      in
      let series =
        Option.map (fun path -> Obs.Export.series_create ~path ~interval_ms:1000)
          stats_jsonl
      in
      let stop = ref false in
      let handler = Sys.Signal_handle (fun _ -> stop := true) in
      Sys.set_signal Sys.sigint handler;
      Sys.set_signal Sys.sigterm handler;
      Printf.printf "dced: listening on %s:%d (%d user(s) + admin, doc %S)\n%!" bind
        (Netd.Relay.port relay) users text;
      (match admin with
       | Some a -> Printf.printf "dced: admin socket on %d\n%!" (Netd.Admin.port a)
       | None -> ());
      Netd.Relay.run ~tick_ms:100
        ~on_tick:(fun r ->
          (match metrics with
           | Some m ->
             Obs.Metrics.set (Obs.Metrics.gauge m "netd.conns")
               (Netd.Relay.conn_count r);
             Obs.Metrics.set (Obs.Metrics.gauge m "netd.outbox_bytes")
               (Netd.Relay.outbox_bytes r);
             Option.iter (fun s -> Obs.Export.series_tick s m) series
           | None -> ());
          Option.iter Netd.Admin.step admin;
          if !stop then Netd.Relay.shutdown r)
        relay;
      Option.iter Netd.Admin.close admin;
      Option.iter Obs.Export.series_close series;
      (match journal with
       | None -> ()
       | Some j ->
         (* a clean shutdown leaves a fresh snapshot so the next start
            replays nothing *)
         (match Dce_store.Persist.checkpoint j (Netd.Relay.controller relay) with
          | Ok () -> ()
          | Error e -> prerr_endline ("dced: final checkpoint failed: " ^ e));
         Dce_store.Persist.close j);
      Printf.printf "dced: shut down; final doc %S (policy v%d)\n%!"
        (Dce_ot.Tdoc.visible_string (Controller.document (Netd.Relay.controller relay)))
        (Controller.version (Netd.Relay.controller relay)));
  (match trace_file with
   | Some path -> Printf.printf "trace written to %s\n" path
   | None -> ());
  match metrics with
  | Some m -> Format.printf "metrics:@.%a@." Obs.Metrics.pp m
  | None -> ()

open Cmdliner

let port =
  Arg.(value & opt int 7471
       & info [ "port" ] ~docv:"PORT" ~doc:"TCP port to listen on (0 = ephemeral).")

let bind =
  Arg.(value & opt string "127.0.0.1"
       & info [ "bind" ] ~docv:"ADDR" ~doc:"Address to bind.")

let users =
  Arg.(value & opt int 2
       & info [ "users" ] ~docv:"N" ~doc:"Number of non-admin users registered up front.")

let text =
  Arg.(value & opt string "abc" & info [ "text" ] ~docv:"TEXT" ~doc:"Initial document.")

let heartbeat_ms =
  Arg.(value & opt int 5000
       & info [ "heartbeat-ms" ] ~docv:"MS" ~doc:"Ping a silent connection after $(docv).")

let idle_timeout_ms =
  Arg.(value & opt int 30000
       & info [ "idle-timeout-ms" ] ~docv:"MS" ~doc:"Drop a silent connection after $(docv).")

let data_dir =
  Arg.(value & opt (some string) None
       & info [ "data-dir" ] ~docv:"DIR"
           ~doc:"Persist the session to $(docv) (write-ahead log + snapshots): a \
                 killed or crashed daemon restarted on the same directory resumes \
                 the session with seqnos and late-joiner snapshots intact.")

let fsync =
  Arg.(value & opt string "interval:64"
       & info [ "fsync" ] ~docv:"POLICY"
           ~doc:"Log durability policy with --data-dir: $(b,always), $(b,never), \
                 or $(b,interval:N) (fsync every N records).")

let trace_file =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a JSONL trace (connection lifecycle + the relay's own \
                 integration events) to $(docv).")

let metrics_flag =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Count transport work (bytes/frames in/out, connection lifecycle); \
                 print the registry on exit.")

let admin_port =
  Arg.(value & opt (some int) None
       & info [ "admin" ] ~docv:"PORT"
           ~doc:"Serve a loopback admin socket on $(docv) (0 = ephemeral): \
                 $(b,/metrics) (Prometheus text exposition), $(b,/healthz) and \
                 $(b,/sessions) (JSON).  Implies --metrics.")

let stats_jsonl =
  Arg.(value & opt (some string) None
       & info [ "stats-jsonl" ] ~docv:"FILE"
           ~doc:"Append a JSON metrics snapshot to $(docv) every second (a JSONL \
                 time series).  Implies --metrics.")

let cmd =
  Cmd.v
    (Cmd.info "dced" ~doc:"Relay daemon for multi-process collaborative sessions")
    Term.(const run $ port $ bind $ users $ text $ heartbeat_ms $ idle_timeout_ms
          $ data_dir $ fsync $ trace_file $ metrics_flag $ admin_port $ stats_jsonl)

let () = exit (Cmd.eval cmd)
