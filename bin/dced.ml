(* dced: the hub daemon.

   Hosts any number of named collaborative editing sessions over real
   TCP: every document has its own controller, journal and member set,
   and every connected site's messages are fanned out to the other
   members of the same document.  Late joiners (or reconnecting sites)
   bootstrap from a snapshot of the hub's own session copy.  The hub
   enforces nothing from the paper's security model — each site's
   controller does, exactly as in the peer-to-peer deployment; the
   daemon only provides the reliable broadcast the model assumes (§3.3).

     dune exec bin/dced.exe -- --port 7471 --users 2 --text "abc"

   Then, from other terminals / machines:

     dune exec bin/p2pedit.exe -- --connect 127.0.0.1:7471 --site 1
     dune exec bin/p2pedit.exe -- --connect 127.0.0.1:7471 --site 1 --doc notes

   Old clients (no --doc) attach to the default document "main".
   Federation: a leaf hub relays a home hub's documents to its own
   members with

     dced --port 7472 --hub-id 2 --upstream 127.0.0.1:7471

   Site 0 is the administrator; sites 0..N are registered up front
   (more can join after an `adduser`).  SIGINT/SIGTERM shut down
   cleanly; with --metrics the transport counters are printed on
   exit. *)

open Dce_core
module Obs = Dce_obs
module Netd = Dce_netd
module Hub = Dce_hub.Hub

(* A site id no user will ever hold: each hosted controller is a
   passive group member that only integrates what it relays.  Offset by
   the hub id so federated hubs join each other's sessions under
   distinct sites. *)
let relay_site hub_id = 1_000_000 + hub_id

let parse_host_port s =
  match String.rindex_opt s ':' with
  | Some i -> (
    let host = String.sub s 0 i
    and p = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt p with
    | Some p when host <> "" -> Ok (host, p)
    | _ -> Error (Printf.sprintf "bad HOST:PORT %S" s))
  | None -> Error (Printf.sprintf "bad HOST:PORT %S" s)

let run port bind users text heartbeat_ms idle_timeout_ms data_dir fsync trace_file
    metrics_flag admin_port stats_jsonl docs_arg auto_create hub_id upstream_arg seed
    chaos_arg =
  (* a peer slamming its socket shut mid-write must surface as EPIPE on
     that connection, not kill the daemon *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* the admin socket and the JSONL series both serve the registry, so
     either implies it *)
  let metrics =
    if metrics_flag || admin_port <> None || stats_jsonl <> None then
      Some (Obs.Metrics.create ())
    else None
  in
  Dce_wire.Codec.set_metrics metrics;
  let upstream =
    match upstream_arg with
    | None -> None
    | Some s -> (
      match parse_host_port s with
      | Ok hp -> Some hp
      | Error e ->
        prerr_endline ("dced: --upstream: " ^ e);
        exit 2)
  in
  let chaos =
    match chaos_arg with
    | None -> None
    | Some spec -> (
      match Netd.Faults.of_string spec with
      | Ok cfg -> Some (seed, cfg)
      | Error e ->
        prerr_endline ("dced: --chaos: " ^ e);
        exit 2)
  in
  let docs =
    List.filter (fun d -> d <> "") (String.split_on_char ',' docs_arg)
  in
  let docs = if docs = [] then [ Hub.default_config.Hub.default_doc ] else docs in
  let default_doc = List.hd docs in
  let with_sink f =
    match trace_file with
    | None -> f Obs.Trace.null
    | Some path -> Obs.Trace.with_file path f
  in
  let fsync =
    match Dce_store.Store.fsync_policy_of_string fsync with
    | Ok p -> p
    | Error e ->
      prerr_endline ("dced: " ^ e);
      exit 2
  in
  with_sink (fun sink ->
      let fresh () =
        let all = List.init (users + 1) Fun.id in
        let policy =
          Policy.make ~users:all
            [ Auth.grant [ Subject.Any ] [ Docobj.Whole ] Right.all ]
        in
        Controller.create ~eq:Char.equal ~site:(relay_site hub_id) ~admin:0 ~policy
          ~trace:sink ?metrics (Dce_ot.Tdoc.of_string text)
      in
      (* Per-doc durability layout: the default document keeps the
         data-dir root (so a pre-hub directory recovers unchanged) and
         every other document journals under docs/<name>. *)
      let doc_dir root doc =
        if doc = default_doc then root else Filename.concat (Filename.concat root "docs") doc
      in
      let journals = ref [] in
      let factory doc =
        match data_dir with
        | None -> Ok (fresh (), None)
        | Some root -> (
          let dir = doc_dir root doc in
          let config = { Dce_store.Store.default_config with fsync } in
          match
            Dce_store.Persist.opendir ~config ~eq:Char.equal ~trace:sink
              ~codec:Dce_wire.Proto.char_codec dir
          with
          | Error e -> Error e
          | Ok (j, rec_) -> (
            journals := (doc, j) :: !journals;
            match rec_.Dce_store.Persist.controller with
            | Some c ->
              Printf.printf
                "dced: recovered session %S from %s (generation %d, %d log record(s) \
                 replayed%s)\n%!"
                doc dir
                (Dce_store.Persist.generation j)
                rec_.Dce_store.Persist.replayed
                (if rec_.Dce_store.Persist.truncated_bytes > 0 then
                   Printf.sprintf ", %d torn byte(s) dropped"
                     rec_.Dce_store.Persist.truncated_bytes
                 else "");
              let c =
                match metrics with Some m -> Controller.with_metrics m c | None -> c
              in
              Ok (c, Some j)
            | None -> (
              let c = fresh () in
              match Dce_store.Persist.checkpoint j c with
              | Ok () -> Ok (c, Some j)
              | Error e -> Error e)))
      in
      let addr = Unix.inet_addr_of_string bind in
      let config =
        {
          Hub.default_config with
          Hub.heartbeat_ms;
          idle_timeout_ms;
          hub_id;
          default_doc;
          auto_create;
        }
      in
      let hub =
        try
          Hub.create ~config ?metrics ~trace:sink ~addr ?upstream ~seed ?chaos
            ~eq:Char.equal ~codec:Dce_wire.Proto.char_codec ~factory ~docs ~port ()
        with Failure e | Invalid_argument e ->
          prerr_endline ("dced: " ^ e);
          exit 1
      in
      let doc_json doc =
        let c = Hub.controller ~doc hub in
        Obs.Json.Obj
          [
            ("doc", Obs.Json.String doc);
            ("sites", Obs.Json.List
               (List.map (fun s -> Obs.Json.Int s) (Hub.connected_sites ~doc hub)));
            ("members", Obs.Json.Int (Hub.member_count ~doc hub));
            ("doc_len", Obs.Json.Int
               (Dce_ot.Tdoc.visible_length (Controller.document c)));
            ("policy_version", Obs.Json.Int (Controller.version c));
            ("pending_coop", Obs.Json.Int (Controller.pending_coop c));
            ("pending_admin", Obs.Json.Int (Controller.pending_admin c));
            ("window_len", Obs.Json.Int (Controller.window_len c));
            ("compacted_upto", Obs.Json.Int
               (Dce_ot.Vclock.sum (Controller.compacted_upto c)));
            ("stable_lag", Obs.Json.Int (Controller.stable_lag c));
            ("fingerprint", Obs.Json.String
               (Dce_wire.Proto.content_fingerprint Dce_wire.Proto.char_codec c));
          ]
      in
      let sessions () =
        (* top-level fields describe the default document (the shape
           the single-session daemon served); "docs" lists everyone *)
        let c = Hub.controller hub in
        Obs.Json.Obj
          [
            ("sites", Obs.Json.List
               (List.map (fun s -> Obs.Json.Int s) (Hub.connected_sites hub)));
            ("doc_len", Obs.Json.Int
               (Dce_ot.Tdoc.visible_length (Controller.document c)));
            ("policy_version", Obs.Json.Int (Controller.version c));
            ("pending_coop", Obs.Json.Int (Controller.pending_coop c));
            ("pending_admin", Obs.Json.Int (Controller.pending_admin c));
            ("hub_id", Obs.Json.Int hub_id);
            ("upstream_connected", Obs.Json.Bool (Hub.upstream_connected hub));
            ("docs", Obs.Json.List (List.map doc_json (Hub.docs hub)));
          ]
      in
      (* real health: upstream degradation, journal write failures and
         runaway stability lag all flip the status (and the admin plane
         serves any not-"ok" status as a 503) *)
      let healthz () =
        match Hub.healthz hub () with
        | Obs.Json.Obj fields ->
          Obs.Json.Obj
            (fields
            @ [
                ("pid", Obs.Json.Int (Unix.getpid ()));
                ("port", Obs.Json.Int (Hub.port hub));
              ])
        | j -> j
      in
      let admin =
        Option.map
          (fun p -> Netd.Admin.create ?metrics ~healthz ~sessions ~port:p ())
          admin_port
      in
      let series =
        Option.map (fun path -> Obs.Export.series_create ~path ~interval_ms:1000)
          stats_jsonl
      in
      let stop = ref false in
      let handler = Sys.Signal_handle (fun _ -> stop := true) in
      Sys.set_signal Sys.sigint handler;
      Sys.set_signal Sys.sigterm handler;
      Printf.printf "dced: listening on %s:%d (%d user(s) + admin, doc %S, %d doc(s))\n%!"
        bind (Hub.port hub) users text
        (List.length (Hub.docs hub));
      (match upstream with
       | Some (h, p) -> Printf.printf "dced: leaf of %s:%d (hub id %d)\n%!" h p hub_id
       | None -> ());
      (match admin with
       | Some a -> Printf.printf "dced: admin socket on %d\n%!" (Netd.Admin.port a)
       | None -> ());
      Hub.run ~tick_ms:100
        ~on_tick:(fun h ->
          (match metrics with
           | Some m ->
             Obs.Metrics.set (Obs.Metrics.gauge m "netd.conns") (Hub.conn_count h);
             Obs.Metrics.set (Obs.Metrics.gauge m "netd.outbox_bytes")
               (Hub.outbox_bytes h);
             Option.iter (fun s -> Obs.Export.series_tick s m) series
           | None -> ());
          Option.iter Netd.Admin.step admin;
          if !stop then Hub.shutdown h)
        hub;
      Option.iter Netd.Admin.close admin;
      Option.iter Obs.Export.series_close series;
      (* a clean shutdown leaves fresh snapshots so the next start
         replays nothing *)
      List.iter
        (fun (doc, j) ->
          (match Hub.controller ~doc hub with
           | c -> (
             match Dce_store.Persist.checkpoint j c with
             | Ok () -> ()
             | Error e ->
               prerr_endline
                 (Printf.sprintf "dced: final checkpoint of %S failed: %s" doc e))
           | exception Invalid_argument _ -> ());
          Dce_store.Persist.close j)
        !journals;
      List.iter
        (fun doc ->
          let c = Hub.controller ~doc hub in
          Printf.printf "dced: shut down; doc %S final %S (policy v%d)\n%!" doc
            (Dce_ot.Tdoc.visible_string (Controller.document c))
            (Controller.version c))
        (Hub.docs hub));
  (match trace_file with
   | Some path -> Printf.printf "trace written to %s\n" path
   | None -> ());
  match metrics with
  | Some m -> Format.printf "metrics:@.%a@." Obs.Metrics.pp m
  | None -> ()

open Cmdliner

let port =
  Arg.(value & opt int 7471
       & info [ "port" ] ~docv:"PORT" ~doc:"TCP port to listen on (0 = ephemeral).")

let bind =
  Arg.(value & opt string "127.0.0.1"
       & info [ "bind" ] ~docv:"ADDR" ~doc:"Address to bind.")

let users =
  Arg.(value & opt int 2
       & info [ "users" ] ~docv:"N" ~doc:"Number of non-admin users registered up front.")

let text =
  Arg.(value & opt string "abc" & info [ "text" ] ~docv:"TEXT" ~doc:"Initial document.")

let heartbeat_ms =
  Arg.(value & opt int 5000
       & info [ "heartbeat-ms" ] ~docv:"MS" ~doc:"Ping a silent connection after $(docv).")

let idle_timeout_ms =
  Arg.(value & opt int 30000
       & info [ "idle-timeout-ms" ] ~docv:"MS" ~doc:"Drop a silent connection after $(docv).")

let data_dir =
  Arg.(value & opt (some string) None
       & info [ "data-dir" ] ~docv:"DIR"
           ~doc:"Persist the sessions to $(docv) (write-ahead log + snapshots): a \
                 killed or crashed daemon restarted on the same directory resumes \
                 every session with seqnos and late-joiner snapshots intact.  The \
                 default document keeps the directory root; other documents \
                 journal under $(docv)/docs/NAME.")

let fsync =
  Arg.(value & opt string "interval:64"
       & info [ "fsync" ] ~docv:"POLICY"
           ~doc:"Log durability policy with --data-dir: $(b,always), $(b,never), \
                 or $(b,interval:N) (fsync every N records).")

let trace_file =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a JSONL trace (connection lifecycle + the hub's own \
                 integration events) to $(docv).")

let metrics_flag =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Count transport work (bytes/frames in/out, connection lifecycle, \
                 per-doc fan-out); print the registry on exit.")

let admin_port =
  Arg.(value & opt (some int) None
       & info [ "admin" ] ~docv:"PORT"
           ~doc:"Serve a loopback admin socket on $(docv) (0 = ephemeral): \
                 $(b,/metrics) (Prometheus text exposition), $(b,/healthz) and \
                 $(b,/sessions) (JSON, one entry per hosted document).  Implies \
                 --metrics.")

let stats_jsonl =
  Arg.(value & opt (some string) None
       & info [ "stats-jsonl" ] ~docv:"FILE"
           ~doc:"Append a JSON metrics snapshot to $(docv) every second (a JSONL \
                 time series).  Implies --metrics.")

let docs_arg =
  Arg.(value & opt string "main"
       & info [ "docs" ] ~docv:"NAMES"
           ~doc:"Comma-separated document names to host (the first is the default \
                 document old single-doc clients attach to).")

let auto_create =
  Arg.(value & flag
       & info [ "auto-create" ]
           ~doc:"Open a new session on the first $(b,Attach) to an unknown \
                 document name; without this flag, unknown names drop the peer.")

let hub_id =
  Arg.(value & opt int 0
       & info [ "hub-id" ] ~docv:"N"
           ~doc:"This hub's federation identity (loop prevention); required \
                 nonzero and unique with --upstream.")

let upstream_arg =
  Arg.(value & opt (some string) None
       & info [ "upstream" ] ~docv:"HOST:PORT"
           ~doc:"Run as a federation leaf of the given home hub: every hosted \
                 document is attached upstream, local frames are forwarded up and \
                 home frames are rebroadcast to local members.")

let seed =
  Arg.(value & opt int 0
       & info [ "seed" ] ~docv:"N"
           ~doc:"Process-level randomness seed: fixes the upstream reconnect \
                 jitter and every --chaos fault plan, so a failing run can be \
                 replayed exactly.")

let chaos_arg =
  Arg.(value & opt (some string) None
       & info [ "chaos" ] ~docv:"SPEC"
           ~doc:"Inject deterministic faults into every outgoing frame (members \
                 and the federation link), e.g. \
                 $(b,drop=0.05,dup=0.02,delay=0.1,delay_ms=40,reorder=0.05).  \
                 Reproducible from --seed; for soak tests only.")

let cmd =
  Cmd.v
    (Cmd.info "dced" ~doc:"Hub daemon for multi-process collaborative sessions")
    Term.(const run $ port $ bind $ users $ text $ heartbeat_ms $ idle_timeout_ms
          $ data_dir $ fsync $ trace_file $ metrics_flag $ admin_port $ stats_jsonl
          $ docs_arg $ auto_create $ hub_id $ upstream_arg $ seed $ chaos_arg)

let () = exit (Cmd.eval cmd)
