(* trace: offline inspector for JSONL traces.

   Reads a trace produced with --trace (replay, p2pedit or bench),
   reconstructs per-site timelines, tabulates event counts per site,
   derives generation-to-delivery propagation latency, and runs the
   causal-sanity audit.  Exits non-zero when the audit finds
   violations, so a trace check can gate CI like the oracles do.

     dune exec bin/replay.exe -- --seed 42 --trace /tmp/t.jsonl
     dune exec bin/trace.exe -- /tmp/t.jsonl
     dune exec bin/trace.exe -- /tmp/t.jsonl --site 2 --limit 0  *)

open Dce_obs

module IntM = Map.Make (Int)

let sites_of events =
  List.sort_uniq compare (List.map (fun e -> e.Trace.site) events)

(* ----- summary ----- *)

let summary ppf events =
  let n = List.length events in
  let sites = sites_of events in
  let min_f f = List.fold_left (fun a e -> min a (f e)) max_int events in
  let max_f f = List.fold_left (fun a e -> max a (f e)) min_int events in
  Format.fprintf ppf "%d event(s), %d site(s)%s@." n (List.length sites)
    (if sites = [] then ""
     else
       Format.asprintf " (%a)"
         (Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
            Format.pp_print_int)
         sites);
  if n > 0 then begin
    Format.fprintf ppf "policy versions %d..%d, " (min_f (fun e -> e.Trace.version))
      (max_f (fun e -> e.Trace.version));
    let span = max_f (fun e -> e.Trace.t_ns) - min_f (fun e -> e.Trace.t_ns) in
    Format.fprintf ppf "wall-clock span %.3f ms@." (float_of_int span /. 1e6)
  end

(* ----- per-site timelines ----- *)

let timelines ppf events only_site limit =
  let by_site =
    List.fold_left
      (fun m e ->
        let s = e.Trace.site in
        IntM.update s (function None -> Some [ e ] | Some l -> Some (e :: l)) m)
      IntM.empty events
  in
  IntM.iter
    (fun site rev ->
      if only_site = None || only_site = Some site then begin
        let evs = List.rev rev in
        let n = List.length evs in
        Format.fprintf ppf "@.-- site %d (%d event(s)) --@." site n;
        let shown = if limit > 0 && n > limit then limit else n in
        List.iteri
          (fun i e -> if i < shown then Format.fprintf ppf "%a@." Trace.pp_event e)
          evs;
        if shown < n then
          Format.fprintf ppf "... %d more (raise --limit or pass --limit 0)@."
            (n - shown)
      end)
    by_site

(* ----- per-event-type counts per site ----- *)

let names =
  [
    "generate"; "check_local"; "broadcast"; "receive"; "interval_recheck";
    "retroactive_undo"; "validate"; "invalidate"; "deliver"; "admin_apply";
    "net";
  ]

let table ppf events =
  let sites = sites_of events in
  let count name site =
    List.length
      (List.filter
         (fun e -> e.Trace.site = site && Trace.kind_name e.Trace.kind = name)
         events)
  in
  Format.fprintf ppf "@.%-18s" "event";
  List.iter (fun s -> Format.fprintf ppf "%8s" (Printf.sprintf "site %d" s)) sites;
  Format.fprintf ppf "%8s@." "total";
  List.iter
    (fun name ->
      let per = List.map (count name) sites in
      let total = List.fold_left ( + ) 0 per in
      if total > 0 then begin
        Format.fprintf ppf "%-18s" name;
        List.iter (fun c -> Format.fprintf ppf "%8d" c) per;
        Format.fprintf ppf "%8d@." total
      end)
    names

(* ----- propagation latency -----

   Wall-clock from a request's [generate] at its origin to each remote
   [deliver]; a sim run emits both from one process, so the monotonic
   timestamps are comparable. *)

let propagation ppf events =
  let born = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match e.Trace.kind with
      | Trace.Generate { request; _ } ->
        if not (Hashtbl.mem born request) then Hashtbl.add born request e.Trace.t_ns
      | _ -> ())
    events;
  let m = Metrics.create () in
  let h = Metrics.histogram m "propagation_ns" in
  List.iter
    (fun e ->
      match e.Trace.kind with
      | Trace.Deliver { request; _ } -> (
        match Hashtbl.find_opt born request with
        | Some t0 -> Metrics.observe h (e.Trace.t_ns - t0)
        | None -> ())
      | _ -> ())
    events;
  let s = Metrics.summary h in
  if s.Metrics.count > 0 then
    Format.fprintf ppf
      "@.propagation (generate -> deliver): %d sample(s), p50 %.0f ns, p95 %.0f ns, p99 %.0f ns, max %d ns@."
      s.Metrics.count s.Metrics.p50 s.Metrics.p95 s.Metrics.p99 s.Metrics.max

(* ----- multi-file merge -----

   One JSONL trace per process (each editor, the relay), joined into a
   cross-process view.  Every process stamps events with its own wall
   clock, so raw cross-file differences mix true latency with clock
   skew; we estimate per-process offsets from the traffic itself and
   report skew-corrected per-site latency histograms, plus the causal
   audit over every file. *)

module PairM = Map.Make (struct
  type t = int * int

  let compare = compare
end)

(* Minimum observed generate->deliver gap for every (origin,
   destination) pair: the raw material for skew estimation. *)
let min_delays born events =
  List.fold_left
    (fun m e ->
      match e.Trace.kind with
      | Trace.Deliver { request; _ } -> (
        match Hashtbl.find_opt born request with
        | Some (origin, t0) when origin <> e.Trace.site ->
          let d = e.Trace.t_ns - t0 in
          PairM.update (origin, e.Trace.site)
            (function None -> Some d | Some d' -> Some (min d d'))
            m
        | _ -> m)
      | _ -> m)
    PairM.empty events

(* Per-site clock offsets relative to [reference], in ns: corrected
   time = t_ns - offset.  When a pair exchanged traffic both ways the
   symmetric-delay estimate skew = (d_ab - d_ba) / 2 cancels the true
   network delay; one-directional pairs (the relay never generates)
   only admit a lower bound, obtained by shifting the minimum observed
   latency to zero.  Offsets propagate breadth-first from the
   reference through the traffic graph. *)
let estimate_offsets ~reference sites delays =
  let tbl = Hashtbl.create 8 in
  Hashtbl.replace tbl reference (0, "reference");
  let q = Queue.create () in
  Queue.add reference q;
  while not (Queue.is_empty q) do
    let a = Queue.pop q in
    let o_a, _ = Hashtbl.find tbl a in
    List.iter
      (fun b ->
        if b <> a && not (Hashtbl.mem tbl b) then begin
          let fwd = PairM.find_opt (a, b) delays
          and bwd = PairM.find_opt (b, a) delays in
          match fwd, bwd with
          | Some d_ab, Some d_ba ->
            Hashtbl.replace tbl b (o_a + ((d_ab - d_ba) / 2), "paired");
            Queue.add b q
          | Some d_ab, None ->
            Hashtbl.replace tbl b (o_a + d_ab, "lower-bound");
            Queue.add b q
          | None, Some d_ba ->
            Hashtbl.replace tbl b (o_a - d_ba, "lower-bound");
            Queue.add b q
          | None, None -> ()
        end)
      sites
  done;
  List.iter
    (fun s -> if not (Hashtbl.mem tbl s) then Hashtbl.replace tbl s (0, "unsynced"))
    sites;
  tbl

let summary_json (s : Metrics.summary) =
  Json.Obj
    [
      ("count", Json.Int s.Metrics.count);
      ("p50_ns", Json.Float s.Metrics.p50);
      ("p95_ns", Json.Float s.Metrics.p95);
      ("p99_ns", Json.Float s.Metrics.p99);
      ("max_ns", Json.Int s.Metrics.max);
    ]

let pp_latency_table ppf label per_site =
  let any = ref false in
  List.iter
    (fun (site, h) ->
      let s = Metrics.summary h in
      if s.Metrics.count > 0 then begin
        if not !any then Format.fprintf ppf "@.%s (skew-corrected):@." label;
        any := true;
        Format.fprintf ppf
          "  site %d: %d sample(s), p50 %.0f ns, p95 %.0f ns, p99 %.0f ns, max %d ns@."
          site s.Metrics.count s.Metrics.p50 s.Metrics.p95 s.Metrics.p99
          s.Metrics.max
      end)
    per_site

let merge_main files reference json_out =
  let rec read acc = function
    | [] -> Ok (List.rev acc)
    | f :: rest -> (
      match Trace.read_file f with
      | Error msg -> Error (f ^ ": " ^ msg)
      | Ok evs -> read ((f, evs) :: acc) rest)
  in
  match read [] files with
  | Error msg ->
    Format.eprintf "trace: %s@." msg;
    2
  | Ok per_file ->
    let ppf = Format.std_formatter in
    let events = List.concat_map snd per_file in
    let sites = sites_of events in
    (* each site's events must come from exactly one file for the
       per-file audits to cover per-site ordering *)
    let home = Hashtbl.create 8 in
    List.iter
      (fun (f, evs) ->
        List.iter
          (fun e ->
            match Hashtbl.find_opt home e.Trace.site with
            | None -> Hashtbl.add home e.Trace.site f
            | Some f' when f' <> f ->
              Format.eprintf
                "trace: warning: site %d appears in both %s and %s@."
                e.Trace.site f' f
            | Some _ -> ())
          evs)
      per_file;
    Format.fprintf ppf "merged %d file(s): " (List.length per_file);
    summary ppf events;
    (* origin timestamps, and which requests were born tentative *)
    let born = Hashtbl.create 256 in
    let born_tentative = Hashtbl.create 256 in
    List.iter
      (fun e ->
        match e.Trace.kind with
        | Trace.Generate { request; valid } ->
          if not (Hashtbl.mem born request) then begin
            Hashtbl.add born request (e.Trace.site, e.Trace.t_ns);
            if not valid then Hashtbl.add born_tentative request ()
          end
        | _ -> ())
      events;
    let delays = min_delays born events in
    let reference =
      match reference with
      | Some r -> r
      | None -> ( match sites with s :: _ -> s | [] -> 0)
    in
    let offsets = estimate_offsets ~reference sites delays in
    let offset s =
      match Hashtbl.find_opt offsets s with Some (o, _) -> o | None -> 0
    in
    Format.fprintf ppf "@.clock offsets (reference site %d):@." reference;
    List.iter
      (fun s ->
        let o, how = Hashtbl.find offsets s in
        Format.fprintf ppf "  site %d: %+d ns (%s)@." s o how)
      sites;
    (* skew-corrected per-destination-site latency histograms *)
    let m = Metrics.create () in
    let hist_for tbl fmt site =
      match Hashtbl.find_opt tbl site with
      | Some h -> h
      | None ->
        let h = Metrics.histogram m (Printf.sprintf fmt site) in
        Hashtbl.add tbl site h;
        h
    in
    let prop_tbl = Hashtbl.create 8 and valid_tbl = Hashtbl.create 8 in
    List.iter
      (fun e ->
        let corrected request tbl fmt =
          match Hashtbl.find_opt born request with
          | Some (origin, t0) when origin <> e.Trace.site ->
            let lat =
              e.Trace.t_ns - offset e.Trace.site - (t0 - offset origin)
            in
            Metrics.observe (hist_for tbl fmt e.Trace.site) (max 0 lat)
          | _ -> ()
        in
        match e.Trace.kind with
        | Trace.Deliver { request; _ } ->
          corrected request prop_tbl "propagation.site_%d_ns"
        | Trace.Validate request ->
          if Hashtbl.mem born_tentative request then
            corrected request valid_tbl "validation.site_%d_ns"
        | _ -> ())
      events;
    let by_site tbl =
      List.filter_map
        (fun s ->
          Option.map (fun h -> (s, h)) (Hashtbl.find_opt tbl s))
        sites
    in
    let prop = by_site prop_tbl and valid = by_site valid_tbl in
    pp_latency_table ppf "propagation (generate -> deliver)" prop;
    pp_latency_table ppf "admin validation (tentative generate -> validate)" valid;
    (* the audit's checks are all per-site, and every site lives in one
       file, so auditing file by file covers the merged trace *)
    let violations =
      List.concat_map
        (fun (f, evs) ->
          List.map (fun v -> f ^ ": " ^ v) (Audit.causality evs))
        per_file
    in
    Format.fprintf ppf "@.%a" Audit.pp_report violations;
    (match json_out with
     | None -> ()
     | Some path ->
       let site_list tbl_pairs =
         Json.List
           (List.filter_map
              (fun (s, h) ->
                let sm = Metrics.summary h in
                if sm.Metrics.count = 0 then None
                else
                  Some
                    (Json.Obj
                       (("site", Json.Int s)
                        :: (match summary_json sm with
                            | Json.Obj fields -> fields
                            | _ -> []))))
              tbl_pairs)
       in
       let report =
         Json.Obj
           [
             ("files", Json.Int (List.length per_file));
             ("events", Json.Int (List.length events));
             ("sites", Json.List (List.map (fun s -> Json.Int s) sites));
             ("reference_site", Json.Int reference);
             ( "offsets",
               Json.List
                 (List.map
                    (fun s ->
                      let o, how = Hashtbl.find offsets s in
                      Json.Obj
                        [
                          ("site", Json.Int s);
                          ("offset_ns", Json.Int o);
                          ("method", Json.String how);
                        ])
                    sites) );
             ("propagation", site_list prop);
             ("validation", site_list valid);
             ("violations", Json.Int (List.length violations));
           ]
       in
       let oc = open_out path in
       output_string oc (Json.to_string report);
       output_char oc '\n';
       close_out oc;
       Format.fprintf ppf "@.report written to %s@." path);
    if violations = [] then 0 else 1

(* ----- entry point ----- *)

let main file only_site limit quiet =
  match Trace.read_file file with
  | Error msg ->
    Format.eprintf "trace: %s@." msg;
    2
  | Ok events ->
    let ppf = Format.std_formatter in
    summary ppf events;
    if not quiet then begin
      timelines ppf events only_site limit;
      table ppf events;
      propagation ppf events
    end;
    let violations = Audit.causality events in
    Format.fprintf ppf "@.%a" Audit.pp_report violations;
    if violations = [] then 0 else 1

open Cmdliner

let file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"JSONL trace file.")

let only_site =
  Arg.(value & opt (some int) None
       & info [ "site" ] ~doc:"Show only this site's timeline.")

let limit =
  Arg.(value & opt int 20
       & info [ "limit" ] ~doc:"Max events per site timeline (0 = unlimited).")

let quiet =
  Arg.(value & flag
       & info [ "quiet"; "q" ] ~doc:"Only the summary and the causality check.")

let inspect_term = Term.(const main $ file $ only_site $ limit $ quiet)

let merge_files =
  Arg.(non_empty & pos_all file []
       & info [] ~docv:"TRACE" ~doc:"Per-process JSONL trace files to merge.")

let merge_reference =
  Arg.(value & opt (some int) None
       & info [ "ref" ] ~docv:"SITE"
           ~doc:"Reference site for clock-offset estimation (default: the \
                 lowest site id present).")

let merge_json =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"FILE" ~doc:"Also write the report as JSON to $(docv).")

let merge_cmd =
  Cmd.v
    (Cmd.info "merge"
       ~doc:"Join per-process traces into a cross-process latency report"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Each process of a distributed session (every p2pedit editor, \
              the dced relay) writes its own JSONL trace against its own \
              clock.  $(tname) estimates per-process clock offsets from the \
              traffic itself — symmetric minimum one-way delays where a pair \
              exchanged requests both ways, a zero-latency lower bound \
              otherwise — and reports skew-corrected per-site propagation \
              (generate to deliver) and administrative validation (tentative \
              generate to validate) latency histograms, plus the causal \
              audit over every file.  Exits non-zero on audit violations.";
         ])
    Term.(const merge_main $ merge_files $ merge_reference $ merge_json)

let inspect_cmd =
  Cmd.v (Cmd.info "trace" ~doc:"Inspect and audit JSONL traces") inspect_term

(* Cmdliner groups refuse positional arguments on the default command, so
   dispatch by hand: `trace merge ...` joins per-process traces, anything
   else is the original single-file inspector. *)
let () =
  let argv = Sys.argv in
  if Array.length argv > 1 && argv.(1) = "merge" then begin
    let argv =
      Array.append [| argv.(0) ^ " merge" |] (Array.sub argv 2 (Array.length argv - 2))
    in
    exit (Cmd.eval' ~argv merge_cmd)
  end
  else exit (Cmd.eval' inspect_cmd)
