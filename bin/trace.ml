(* trace: offline inspector for JSONL traces.

   Reads a trace produced with --trace (replay, p2pedit or bench),
   reconstructs per-site timelines, tabulates event counts per site,
   derives generation-to-delivery propagation latency, and runs the
   causal-sanity audit.  Exits non-zero when the audit finds
   violations, so a trace check can gate CI like the oracles do.

     dune exec bin/replay.exe -- --seed 42 --trace /tmp/t.jsonl
     dune exec bin/trace.exe -- /tmp/t.jsonl
     dune exec bin/trace.exe -- /tmp/t.jsonl --site 2 --limit 0  *)

open Dce_obs

module IntM = Map.Make (Int)

let sites_of events =
  List.sort_uniq compare (List.map (fun e -> e.Trace.site) events)

(* ----- summary ----- *)

let summary ppf events =
  let n = List.length events in
  let sites = sites_of events in
  let min_f f = List.fold_left (fun a e -> min a (f e)) max_int events in
  let max_f f = List.fold_left (fun a e -> max a (f e)) min_int events in
  Format.fprintf ppf "%d event(s), %d site(s)%s@." n (List.length sites)
    (if sites = [] then ""
     else
       Format.asprintf " (%a)"
         (Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
            Format.pp_print_int)
         sites);
  if n > 0 then begin
    Format.fprintf ppf "policy versions %d..%d, " (min_f (fun e -> e.Trace.version))
      (max_f (fun e -> e.Trace.version));
    let span = max_f (fun e -> e.Trace.t_ns) - min_f (fun e -> e.Trace.t_ns) in
    Format.fprintf ppf "wall-clock span %.3f ms@." (float_of_int span /. 1e6)
  end

(* ----- per-site timelines ----- *)

let timelines ppf events only_site limit =
  let by_site =
    List.fold_left
      (fun m e ->
        let s = e.Trace.site in
        IntM.update s (function None -> Some [ e ] | Some l -> Some (e :: l)) m)
      IntM.empty events
  in
  IntM.iter
    (fun site rev ->
      if only_site = None || only_site = Some site then begin
        let evs = List.rev rev in
        let n = List.length evs in
        Format.fprintf ppf "@.-- site %d (%d event(s)) --@." site n;
        let shown = if limit > 0 && n > limit then limit else n in
        List.iteri
          (fun i e -> if i < shown then Format.fprintf ppf "%a@." Trace.pp_event e)
          evs;
        if shown < n then
          Format.fprintf ppf "... %d more (raise --limit or pass --limit 0)@."
            (n - shown)
      end)
    by_site

(* ----- per-event-type counts per site ----- *)

let names =
  [
    "generate"; "check_local"; "broadcast"; "receive"; "interval_recheck";
    "retroactive_undo"; "validate"; "invalidate"; "deliver"; "admin_apply";
    "net";
  ]

let table ppf events =
  let sites = sites_of events in
  let count name site =
    List.length
      (List.filter
         (fun e -> e.Trace.site = site && Trace.kind_name e.Trace.kind = name)
         events)
  in
  Format.fprintf ppf "@.%-18s" "event";
  List.iter (fun s -> Format.fprintf ppf "%8s" (Printf.sprintf "site %d" s)) sites;
  Format.fprintf ppf "%8s@." "total";
  List.iter
    (fun name ->
      let per = List.map (count name) sites in
      let total = List.fold_left ( + ) 0 per in
      if total > 0 then begin
        Format.fprintf ppf "%-18s" name;
        List.iter (fun c -> Format.fprintf ppf "%8d" c) per;
        Format.fprintf ppf "%8d@." total
      end)
    names

(* ----- propagation latency -----

   Wall-clock from a request's [generate] at its origin to each remote
   [deliver]; a sim run emits both from one process, so the monotonic
   timestamps are comparable. *)

let propagation ppf events =
  let born = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match e.Trace.kind with
      | Trace.Generate { request; _ } ->
        if not (Hashtbl.mem born request) then Hashtbl.add born request e.Trace.t_ns
      | _ -> ())
    events;
  let m = Metrics.create () in
  let h = Metrics.histogram m "propagation_ns" in
  List.iter
    (fun e ->
      match e.Trace.kind with
      | Trace.Deliver { request; _ } -> (
        match Hashtbl.find_opt born request with
        | Some t0 -> Metrics.observe h (e.Trace.t_ns - t0)
        | None -> ())
      | _ -> ())
    events;
  let s = Metrics.summary h in
  if s.Metrics.count > 0 then
    Format.fprintf ppf
      "@.propagation (generate -> deliver): %d sample(s), p50 %.0f ns, p95 %.0f ns, p99 %.0f ns, max %d ns@."
      s.Metrics.count s.Metrics.p50 s.Metrics.p95 s.Metrics.p99 s.Metrics.max

(* ----- entry point ----- *)

let main file only_site limit quiet =
  match Trace.read_file file with
  | Error msg ->
    Format.eprintf "trace: %s@." msg;
    2
  | Ok events ->
    let ppf = Format.std_formatter in
    summary ppf events;
    if not quiet then begin
      timelines ppf events only_site limit;
      table ppf events;
      propagation ppf events
    end;
    let violations = Audit.causality events in
    Format.fprintf ppf "@.%a" Audit.pp_report violations;
    if violations = [] then 0 else 1

open Cmdliner

let file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"JSONL trace file.")

let only_site =
  Arg.(value & opt (some int) None
       & info [ "site" ] ~doc:"Show only this site's timeline.")

let limit =
  Arg.(value & opt int 20
       & info [ "limit" ] ~doc:"Max events per site timeline (0 = unlimited).")

let quiet =
  Arg.(value & flag
       & info [ "quiet"; "q" ] ~doc:"Only the summary and the causality check.")

let cmd =
  Cmd.v
    (Cmd.info "trace" ~doc:"Inspect and audit a JSONL trace")
    Term.(const main $ file $ only_site $ limit $ quiet)

let () = exit (Cmd.eval' cmd)
