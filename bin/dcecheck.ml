(* dcecheck: exhaustive bounded model checker for the secured-OT protocol.

   Explores EVERY delivery interleaving of a small scenario through the
   real controller (lib/check), checking the convergence and security
   oracles at every quiescent frontier.  Where bin/replay.exe samples
   random schedules, dcecheck proves a bounded scenario has none at all
   — or produces a minimal, replayable counterexample.

     dune exec bin/dcecheck.exe -- --sites 3 --coop 3 --admin-ops 1
     dune exec bin/dcecheck.exe -- --no-retro          # find the Fig. 2 hole
     dune exec bin/dcecheck.exe -- --schedule 'g1 d0:c1.0 ...'
     dune exec bin/dcecheck.exe -- --enum              # exhaustive TP1/TP2/inversion
     dune exec bin/dcecheck.exe -- --smoke             # CI suite
     dune exec bin/dcecheck.exe -- --crash --stability 1 --sites 2
                                                       # kill -9 + recovery at every point
     dune exec bin/dcecheck.exe -- --crash --stability 1 --sites 2 --mutant no-clamp
                                                       # seeded bug: must exit 1

   With --crash K every non-admin site is killed (kill -9 over its
   journal, run through the real store stack in memory) after its K-th
   action and rebuilt through the production replay path, exhaustively
   interleaved with deliveries, beacons and compaction; recovery
   exactness, fallback-generation recovery, and the durability clamp
   are checked as additional oracles.  --mutant no-clamp deliberately
   skips the clamp, as a sanity check that the checker catches it.

   Exit status: 0 all green, 1 a violation was found, 2 state cap hit. *)

open Dce_check

let pp_stats ppf (s : Explore.stats) =
  Format.fprintf ppf
    "%d states (%d distinct, %d dedup hits, %d sleep-set skips), %d frontiers, peak \
     in-flight %d, depth %d, %.2fs (%.0f states/s)"
    s.Explore.states s.Explore.distinct s.Explore.dedup_hits s.Explore.sleep_skips
    s.Explore.frontiers s.Explore.peak_inflight s.Explore.max_depth s.Explore.elapsed_s
    (float_of_int s.Explore.states /. Float.max s.Explore.elapsed_s 1e-6)

let print_replay (r : Explore.replay) =
  List.iter (fun line -> Format.printf "    %s@." line) r.Explore.log;
  (match r.Explore.violation with
   | Some v -> Format.printf "  final frontier: %s@." v
   | None -> Format.printf "  final frontier: all oracles hold@.");
  Format.printf "  %d message(s), %d event(s)@." r.Explore.messages
    (List.length r.Explore.executed)

let report_violation ?mutant scenario (v : Explore.violation) =
  Format.printf "VIOLATION: %s@." v.Explore.detail;
  Format.printf "  oracle report: %a@." Dce_sim.Convergence.pp v.Explore.report;
  Format.printf "shrinking schedule (%d events)...@." (List.length v.Explore.schedule);
  let minimal = Shrink.minimize ?mutant scenario v.Explore.schedule in
  let r = Explore.replay ?mutant scenario minimal in
  Format.printf "minimal replayable schedule (%d events, %d messages):@.  --schedule '%s'@."
    (List.length r.Explore.executed)
    r.Explore.messages
    (Explore.schedule_to_string r.Explore.executed);
  print_replay r

let check_scenario ~stats ~metrics ~max_states ?mutant scenario =
  Format.printf "scenario: %a@." Scenario.pp scenario;
  let outcome, s = Explore.run ?metrics ~max_states ?mutant scenario in
  Format.printf "explored: %a@." pp_stats s;
  (match (metrics, stats) with
   | Some m, true -> Format.printf "%a@." Dce_obs.Metrics.pp m
   | _ -> ());
  match outcome with
  | Explore.Exhausted ->
    Format.printf "EXHAUSTED: every interleaving satisfies the oracles@.";
    0
  | Explore.Capped ->
    Format.printf "CAPPED: state budget exceeded (%d); raise --max-states@." max_states;
    2
  | Explore.Found v ->
    report_violation ?mutant scenario v;
    1

let run_enum len =
  let bounds = { Enum.default with Enum.max_len = len } in
  let failed = ref false in
  List.iter
    (fun (name, f) ->
      let o = f ~bounds () in
      match o.Enum.failed with
      | None ->
        Format.printf "%s: holds over %d docs, %d cases@." name o.Enum.docs o.Enum.cases
      | Some c ->
        failed := true;
        Format.printf "%s: FAILED@.  %s@." name c)
    [ ("TP1", fun ~bounds () -> Enum.tp1 ~bounds ());
      ("TP2", fun ~bounds () -> Enum.tp2 ~bounds ());
      ("IT/ET inversion", fun ~bounds () -> Enum.inversion ~bounds ()) ];
  if !failed then 1 else 0

let features ~no_retro ~no_interval ~no_validation =
  {
    Dce_core.Controller.retroactive_undo = not no_retro;
    interval_check = not no_interval;
    validation = not no_validation;
  }

(* The CI suite: every secure scenario must exhaust green, every
   crippled one must surface its hole and shrink it to a short trace. *)
let run_smoke max_states =
  let secure = Dce_core.Controller.secure in
  let expect ?mutant name want scenario =
    let outcome, s = Explore.run ~max_states ?mutant scenario in
    let got, code =
      match outcome with
      | Explore.Exhausted -> (`Green, 0)
      | Explore.Capped -> (`Capped, 2)
      | Explore.Found v ->
        let minimal = Shrink.minimize ?mutant scenario v.Explore.schedule in
        let r = Explore.replay ?mutant scenario minimal in
        Format.printf "  %s: %s@.  minimal: --schedule '%s' (%d messages)@." name
          v.Explore.detail
          (Explore.schedule_to_string r.Explore.executed)
          r.Explore.messages;
        (`Violation, 1)
    in
    ignore code;
    let ok = got = want in
    Format.printf "%s %s: %a@."
      (if ok then "ok  " else "FAIL")
      name pp_stats s;
    ok
  in
  let mk = Scenario.make in
  let checks =
    [ (fun () ->
        expect "secure 3 sites / 3 ops / 1 revocation" `Green
          (mk ~features:secure ~sites:3 ~coop:3 ~admin_ops:1 ()));
      (fun () ->
        expect "secure 3 sites / 2 mixed ops / 2 admin ops" `Green
          (mk ~features:secure ~mixed:true ~sites:3 ~coop:2 ~admin_ops:2 ()));
      (fun () ->
        (* beacons and compaction woven between every action: exhausts in
           ~1s at 2 sites (3 sites put ~10^6 distinct states behind the
           same frontiers and adds nothing the oracles can see) *)
        expect "secure 2 sites / 2 ops / 1 revocation, compaction interleaved" `Green
          (mk ~features:secure ~stability:1 ~sites:2 ~coop:2 ~admin_ops:1 ()));
      (fun () ->
        expect "no retroactive undo finds the Fig. 2 hole" `Violation
          (mk
             ~features:(features ~no_retro:true ~no_interval:false ~no_validation:false)
             ~sites:3 ~coop:2 ~admin_ops:1 ()));
      (fun () ->
        expect "no interval check finds the Fig. 3 hole" `Violation
          (mk
             ~features:(features ~no_retro:false ~no_interval:true ~no_validation:false)
             ~sites:3 ~coop:2 ~admin_ops:2 ()));
      (fun () ->
        expect "no validation finds the Fig. 4 hole" `Violation
          (mk
             ~features:(features ~no_retro:false ~no_interval:false ~no_validation:true)
             ~sites:3 ~coop:2 ~admin_ops:1 ()));
      (fun () ->
        (* every non-admin site killed and rebuilt through the real
           store replay path, interleaved with beacons and compaction *)
        expect "crash + recovery at every point, compaction interleaved" `Green
          (mk ~features:secure ~stability:1 ~crash:1 ~sites:2 ~coop:2 ~admin_ops:1 ()));
      (fun () ->
        expect ~mutant:Explore.No_clamp
          "seeded mutant: unclamped compaction is caught" `Violation
          (mk ~features:secure ~stability:1 ~crash:1 ~sites:2 ~coop:2 ~admin_ops:1 ()));
      (fun () ->
        let code = run_enum Enum.default.Enum.max_len in
        Format.printf "%s exhaustive TP1/TP2/inversion@."
          (if code = 0 then "ok  " else "FAIL");
        code = 0)
    ]
  in
  let ok = List.for_all (fun f -> f ()) checks in
  Format.printf "%s@." (if ok then "smoke: all checks behaved as expected" else "smoke: FAILURES");
  if ok then 0 else 1

let main sites coop admin_ops mixed initial stability crash mutant no_retro no_interval
    no_validation max_states stats smoke enum enum_len schedule =
  let features = features ~no_retro ~no_interval ~no_validation in
  match
    match mutant with
    | None -> Ok None
    | Some "no-clamp" -> Ok (Some Explore.No_clamp)
    | Some m -> Error m
  with
  | Error m ->
    Format.eprintf "unknown --mutant %S (known: no-clamp)@." m;
    2
  | Ok mutant ->
    if smoke then run_smoke max_states
    else if enum then run_enum enum_len
    else
      let scenario =
        Scenario.make ~features ?initial ~mixed ?stability ?crash ~sites ~coop
          ~admin_ops ()
      in
      (match schedule with
       | Some s -> (
         match Explore.schedule_of_string s with
         | Error e ->
           Format.eprintf "bad --schedule: %s@." e;
           2
         | Ok events ->
           Format.printf "replaying %d event(s) on: %a@." (List.length events) Scenario.pp
             scenario;
           let r = Explore.replay ?mutant scenario events in
           if r.Explore.skipped > 0 then
             Format.printf "  (%d event(s) not enabled, skipped)@." r.Explore.skipped;
           print_replay r;
           if r.Explore.violation = None then 0 else 1)
       | None ->
         let metrics = if stats then Some (Dce_obs.Metrics.create ()) else None in
         check_scenario ~stats ~metrics ~max_states ?mutant scenario)

open Cmdliner

let sites = Arg.(value & opt int 3 & info [ "sites" ] ~doc:"Sites, admin included (>= 2).")
let coop = Arg.(value & opt int 3 & info [ "coop" ] ~doc:"Cooperative ops, dealt round-robin.")

let admin_ops =
  Arg.(value & opt int 1
       & info [ "admin-ops" ] ~doc:"Admin ops, alternating revoke/re-grant of user 1's insert.")

let mixed =
  Arg.(value & flag & info [ "mixed" ] ~doc:"Mix ins/del/up edits instead of insertions only.")

let initial =
  Arg.(value & opt (some string) None & info [ "initial" ] ~docv:"TEXT" ~doc:"Initial document.")

let stability =
  Arg.(value & opt (some int) None
       & info [ "stability" ] ~docv:"K"
           ~doc:"Weave a beacon broadcast + window compaction into every site's script \
                 after each K-th action, interleaved with all delivery orders.")

let crash =
  Arg.(value & opt ~vopt:(Some 1) (some int) None
       & info [ "crash" ] ~docv:"K"
           ~doc:"Journal every site's inputs through the real store stack (in memory) \
                 and kill -9 + recover every non-admin site after its K-th action \
                 (default 1), interleaved with all delivery orders; checks recovery \
                 exactness, corrupt-snapshot fallback, and the durability clamp.")

let mutant =
  Arg.(value & opt (some string) None
       & info [ "mutant" ] ~docv:"NAME"
           ~doc:"Run with a deliberately seeded bug (known: no-clamp, which compacts \
                 past the durable cut) — the checker must find a violation, proving \
                 the crash oracles have teeth.")

let no_retro =
  Arg.(value & flag & info [ "no-retro"; "no-undo" ] ~doc:"Disable retroactive undo (Fig. 2 hole).")

let no_interval =
  Arg.(value & flag
       & info [ "no-interval-check" ] ~doc:"Disable administrative log checks (Fig. 3 hole).")

let no_validation =
  Arg.(value & flag & info [ "no-validation" ] ~doc:"Disable validation (Fig. 4 hole).")

let max_states =
  Arg.(value & opt int 1_000_000 & info [ "max-states" ] ~doc:"State budget before giving up.")

let stats =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print the metrics registry after the run.")

let smoke = Arg.(value & flag & info [ "smoke" ] ~doc:"Run the CI smoke suite.")

let enum =
  Arg.(value & flag
       & info [ "enum" ] ~doc:"Exhaustive TP1/TP2/inversion sweep instead of exploration.")

let enum_len =
  Arg.(value & opt int 2 & info [ "enum-len" ] ~doc:"Maximum document length for --enum.")

let schedule =
  Arg.(value & opt (some string) None
       & info [ "schedule" ] ~docv:"EVENTS"
           ~doc:"Replay one schedule (as printed by a shrunk counterexample) and stop.")

let cmd =
  Cmd.v
    (Cmd.info "dcecheck" ~doc:"Exhaustive bounded model checker for the secured-OT protocol")
    Term.(
      const main $ sites $ coop $ admin_ops $ mixed $ initial $ stability $ crash
      $ mutant $ no_retro $ no_interval $ no_validation $ max_states $ stats $ smoke
      $ enum $ enum_len $ schedule)

let () = exit (Cmd.eval' cmd)
