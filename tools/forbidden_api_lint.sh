#!/bin/sh
# Forbidden-API lint, run from the repository root (CI runs it on every
# push; `sh tools/forbidden_api_lint.sh` locally).
#
# Rules:
#
#   unix-select   Unix.select anywhere outside lib/hub/evloop*.
#                 select(2) silently corrupts beyond FD_SETSIZE (1024)
#                 descriptors; lib/hub/evloop is the poll-backed wrapper
#                 that exists so nothing else has to care.  Single-fd
#                 waits in leaf code are tolerable and allowlisted.
#
#   lib-print     Printf.printf / print_endline / print_string /
#                 print_newline / Printf.eprintf / prerr_endline inside
#                 lib/.  Libraries must not write to the process's
#                 stdout/stderr behind the caller's back: observability
#                 goes through Dce_obs (metrics, traces) or a
#                 caller-supplied Format formatter.
#
#   lib-exit      exit / Stdlib.exit inside lib/.  Only executables may
#                 decide the process's fate; a library error is a result
#                 or an exception.
#
# Allowlist: tools/forbidden_api_allowlist.txt, one "<rule> <path>" per
# line ('#' comments).  An entry exempts the whole file for that rule —
# keep entries rare and justified inline.

set -u
cd "$(dirname "$0")/.."

allowlist=tools/forbidden_api_allowlist.txt
fail=0

allowed() { # rule file
  grep -qE "^$1[[:space:]]+$2\$" "$allowlist" 2>/dev/null
}

report() { # rule matches
  rule=$1
  shift
  [ -n "$*" ] || return 0
  for line in "$@"; do
    file=${line%%:*}
    if ! allowed "$rule" "$file"; then
      echo "forbidden-api [$rule]: $line" >&2
      fail=1
    fi
  done
}

# POSIX sh word-splits on newlines only inside `set --`; collect grep
# output one match per positional parameter.
collect() { # sets $@ from stdin lines
  set --
  while IFS= read -r l; do set -- "$@" "$l"; done
  printf '%s\n' "$@"
}

old_ifs=$IFS
IFS='
'

set -- $(grep -rn 'Unix\.select' lib bin test bench examples 2>/dev/null \
  | grep -v '^lib/hub/evloop') || true
report unix-select "$@"

set -- $(grep -rnE '(^|[^.[:alnum:]_])(Printf\.(printf|eprintf)|print_endline|print_string|print_newline|prerr_endline)' lib 2>/dev/null) || true
report lib-print "$@"

set -- $(grep -rnE '(^|[^.[:alnum:]_])(Stdlib\.)?exit [0-9]' lib 2>/dev/null) || true
report lib-exit "$@"

IFS=$old_ifs

if [ "$fail" -ne 0 ]; then
  echo "forbidden-api lint failed; add a justified entry to $allowlist only if the use is genuinely necessary" >&2
  exit 1
fi
echo "forbidden-api lint clean"
